// The MIDDLE training loop (paper Algorithm 1), as a staged step pipeline.
//
// Each time step advances through six named phases:
//
//   Select        every edge picks K of its connected devices (Eq. 12)
//   Distribute    selected devices download the edge model; devices that
//                 just moved blend it with the model they carried
//                 (on-device aggregation, Eq. 9)
//   LocalTrain    I local SGD steps per participating device
//   Upload        trained models go back over the wireless uplink
//   EdgeAggregate each edge FedAvgs the uploads that arrived (Eq. 6)
//   CloudSync     every T_c steps the cloud FedAvgs the edge models with
//                 participating-sample weights (Eq. 7) and broadcasts the
//                 global model down to every edge and device
//
// Every inter-tier model transfer flows through a typed transport::Link
// (wireless device<->edge, WAN edge<->cloud, the intra-device carry), each
// carrying its own policy: loss probability, lossy compression, byte
// accounting, and — on uplinks — a deterministic latency-in-steps delay
// queue whose stale arrivals join a later aggregation. Registered
// StepObservers receive phase/transfer/sync events at serial stage
// boundaries; communication accounting is one such observer, not state
// threaded through the training code.
//
// Device training within a step is embarrassingly parallel: all selected
// (edge, device) pairs across ALL edges form one flat task list that runs
// on the thread pool in a single parallel_for, so a K-device edge never
// serializes behind its neighbours. Upload processing and edge aggregation
// fan out per edge the same way. All randomness is keyed on (seed, entity,
// step), link counters are commutative atomics, and all other parallel
// reductions commit serially in fixed task order, so results are
// bit-identical regardless of thread count — and, under default link
// policies, bit-identical to the pre-transport monolithic loop (pinned by
// pipeline_test).
#pragma once

#include <functional>
#include <limits>
#include <memory>

#include "core/algorithms.hpp"
#include "core/comm_stats.hpp"
#include "core/compression.hpp"
#include "core/entities.hpp"
#include "core/metrics.hpp"
#include "core/similarity_cache.hpp"
#include "core/step_observer.hpp"
#include "data/partition.hpp"
#include "mobility/mobility_model.hpp"
#include "nn/model_factory.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"
#include "parallel/thread_pool.hpp"
#include "transport/transport.hpp"

namespace middlefl::core {

struct SimulationConfig {
  std::size_t select_per_edge = 5;   // K
  std::size_t local_steps = 10;      // I
  std::size_t cloud_interval = 10;   // T_c
  std::size_t batch_size = 16;
  std::size_t total_steps = 1000;    // T
  /// Per-step learning rate; defaults to constant 0.01 (the paper's SGD
  /// setting) when empty.
  optim::LrSchedule lr_schedule;
  /// Clear momentum/Adam state whenever a device starts a round from a
  /// downloaded/blended model (the usual FL convention).
  bool reset_optimizer_each_round = true;
  /// Algorithm 1 lines 14-15: push the fresh global model to every device
  /// at sync. Disabling is an ablation that lets local models drift longer.
  bool broadcast_to_devices = true;
  /// Eq. 7 participating-sample weights d_hat_n; false = uniform edge
  /// weights (ablation 4 in DESIGN.md).
  bool weighted_cloud_aggregation = true;

  std::size_t eval_every = 10;
  /// Subsample size for periodic evaluation; 0 = the full test set.
  std::size_t eval_samples = 1000;
  bool track_per_class = false;
  /// Record each edge model's test accuracy at eval points.
  bool track_edge_accuracy = false;

  /// Per-link transport policies (loss, compression, latency) for the
  /// whole hierarchy. Defaults are perfect links.
  transport::TransportConfig transport;
  /// Legacy alias: populates transport.wireless_up.loss_prob when nonzero
  /// (straggler / radio failure injection on the uplink). The device still
  /// trains — its local model keeps the update — but the edge aggregates
  /// without it that step. After construction both views agree.
  double upload_failure_prob = 0.0;
  /// FedProx proximal coefficient for local training (0 = plain SGD).
  double prox_mu = 0.0;
  /// Global-norm gradient clipping threshold for local steps (0 = off).
  double clip_norm = 0.0;
  /// Server momentum (FedAvgM): the cloud applies
  /// v = m*v + (aggregate - w_c); w_c += v at each sync. 0 disables.
  double server_momentum = 0.0;

  /// System heterogeneity: relative compute speed per device (1.0 =
  /// nominal; empty = homogeneous). With a positive `round_deadline`, a
  /// selected device only completes min(I, floor(deadline * speed)) local
  /// steps within the time step; devices that cannot finish even one step
  /// are dropped from the round (counted by straggler_drops()). This
  /// models the paper's premise that "any device can complete the entire
  /// one-round process in a time step" breaking down on slow hardware.
  std::vector<double> device_speeds;
  /// Local steps a speed-1.0 device can complete per time step; 0 = no
  /// deadline (every device always finishes all I steps).
  double round_deadline = 0.0;
  /// Legacy alias: populates transport.wireless_up.compression when set.
  /// Lossy compression applied to device->edge uploads (the edge
  /// aggregates the reconstruction; upload_bytes() tracks the wire size).
  CompressionConfig upload_compression;

  std::uint64_t seed = 42;
  /// Train selected devices on the global thread pool.
  bool parallel_devices = true;
  /// Reuse Eq. 11 selection scores across steps for (device, cloud)
  /// version pairs that have not changed. Pure acceleration: scores are
  /// bitwise identical with the cache on or off.
  bool use_similarity_cache = true;
};

class Simulation {
 public:
  /// `partition.device_indices.size()` fixes the device count and must
  /// match `mobility->num_devices()`. All models start from one common
  /// initialization drawn from cfg.seed.
  Simulation(SimulationConfig cfg, const nn::ModelSpec& model_spec,
             const optim::Optimizer& optimizer_prototype,
             const data::Dataset& train, const data::Partition& partition,
             const data::Dataset& test,
             std::unique_ptr<mobility::MobilityModel> mobility,
             AlgorithmSpec algorithm);

  /// Advances one time step (t starts at 1) through the staged pipeline.
  /// Returns true if a cloud synchronization happened this step.
  bool step();

  /// Runs the remaining steps up to cfg.total_steps, evaluating on the
  /// configured schedule. `progress` (optional) is invoked after each
  /// evaluation with the fresh point.
  RunHistory run(
      const std::function<void(const EvalPoint&)>& progress = nullptr);

  /// Evaluates the current global model immediately and appends the point
  /// to the history.
  const EvalPoint& evaluate_now();

  /// Warm start: installs `params` (e.g. a loaded checkpoint) as the global
  /// model on the cloud, every edge and every device, exactly like a cloud
  /// synchronization broadcast. Size must equal the model's param count.
  /// An out-of-band operator action, not network traffic: no link is
  /// charged.
  void warm_start(std::span<const float> params);

  /// Registers an observer (non-owning; must outlive the simulation).
  /// Events fire on the simulation thread in registration order, after the
  /// built-in communication accounting.
  void add_observer(StepObserver* observer);

  // --- Introspection (benches, tests) ---
  std::size_t current_step() const noexcept { return t_; }
  std::size_t num_devices() const noexcept { return devices_.size(); }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  std::span<const float> cloud_params() const { return cloud_.params(); }
  std::span<const float> edge_params(std::size_t n) const {
    return edges_.at(n).params();
  }
  Device& device(std::size_t m) { return devices_.at(m); }
  const std::vector<std::size_t>& assignment() const {
    return mobility_->assignment();
  }
  /// Devices selected at the last step, grouped by edge.
  const std::vector<std::vector<std::size_t>>& last_selection() const {
    return last_selection_;
  }
  const RunHistory& history() const noexcept { return history_; }
  Evaluator& evaluator() noexcept { return *evaluator_; }
  const SimulationConfig& config() const noexcept { return cfg_; }

  /// The typed links every model transfer flows through; per-link traffic
  /// reports live here (transport().bytes_by_link()).
  transport::Transport& transport() noexcept { return *transport_; }
  const transport::Transport& transport() const noexcept {
    return *transport_;
  }

  /// Model-transfer counters accumulated since construction (rebuilt from
  /// pipeline events by the built-in CommStatsObserver).
  const CommStats& comm_stats() const noexcept {
    return comm_observer_.stats();
  }
  /// Uploads dropped by the wireless uplink's loss policy so far.
  std::size_t failed_uploads() const noexcept {
    return transport_->stats(transport::LinkKind::kWirelessUp).dropped;
  }
  /// Edge-model downloads lost to the wireless downlink's loss policy so
  /// far; the affected device sits the round out.
  std::size_t lost_downloads() const noexcept {
    return transport_->stats(transport::LinkKind::kWirelessDown).dropped;
  }
  /// Selected devices dropped because they could not finish one local step
  /// before the round deadline.
  std::size_t straggler_drops() const noexcept { return straggler_drops_; }
  /// Simulated device->edge uplink bytes (after compression) so far.
  std::size_t upload_bytes() const noexcept {
    return transport_->stats(transport::LinkKind::kWirelessUp).bytes;
  }

  /// Mean total-variation skew of the CURRENT per-edge data mixtures
  /// relative to the global mixture (see core::mean_edge_skew).
  double current_edge_skew() const;

  /// Count of on-device aggregations applied so far and the running mean
  /// blend weight given to the carried local model.
  std::size_t on_device_aggregations() const noexcept { return blends_; }
  double mean_blend_weight() const noexcept {
    return blends_ == 0 ? 0.0 : blend_weight_sum_ / static_cast<double>(blends_);
  }
  /// Selection-score cache hit/miss counters (throughput introspection).
  const SimilarityCache& similarity_cache() const noexcept {
    return similarity_cache_;
  }

 private:
  // The staged pipeline. Each stage reads the step-scratch state the
  // previous stages produced; step() calls them in order and emits phase
  // events at each boundary.
  void begin_step();
  void stage_select();
  void stage_distribute();
  void stage_local_train();
  void stage_upload();
  void stage_edge_aggregate();
  void stage_cloud_sync();

  void notify_phase(StepPhase phase);
  /// Emits on_transfers for the delta a stage put on `kind` since
  /// `before`.
  void notify_transfers(StepPhase phase, transport::LinkKind kind,
                        const transport::LinkStats& before);

  SimulationConfig cfg_;
  AlgorithmSpec algorithm_;
  std::vector<Device> devices_;
  std::vector<Edge> edges_;
  Cloud cloud_;
  std::unique_ptr<mobility::MobilityModel> mobility_;
  std::unique_ptr<Evaluator> evaluator_;
  std::unique_ptr<transport::Transport> transport_;
  parallel::StreamRng streams_;
  std::size_t t_ = 0;
  std::vector<std::vector<std::size_t>> last_selection_;
  std::vector<std::size_t> prev_assignment_;
  // Edge snapshot taken at the start of the step so FedMes' prev-edge rule
  // reads w^t even while new edge models are being formed. The outer vector
  // and per-edge buffers are sized once and refilled in place each step.
  std::vector<std::vector<float>> edge_snapshot_;
  SimilarityCache similarity_cache_;
  // Step-scratch buffers, reused across steps to keep the hot loop
  // allocation-free: per-edge candidate membership, the flattened
  // (edge, device) training task list, and per-task result slots that the
  // parallel loops write disjointly and the stage boundaries reduce
  // serially in task order (the deterministic replacement for a
  // mutex-guarded sum).
  std::vector<std::vector<std::size_t>> members_;
  struct TrainTask {
    std::size_t edge = 0;
    std::size_t device = 0;
  };
  std::vector<TrainTask> train_tasks_;
  std::vector<double> task_blend_weight_;
  std::vector<std::uint8_t> task_blended_;
  // Per-edge upload arrivals feeding EdgeAggregate: payload views into
  // device params, per-edge reconstruction arenas (compressed uploads), or
  // stale uplink arrivals drained from the delay queue. All per-edge, so
  // the parallel Upload stage writes them without synchronization.
  struct UploadArrival {
    std::span<const float> payload;
    double weight = 0.0;
  };
  std::vector<std::vector<UploadArrival>> arrivals_;
  std::vector<std::vector<std::vector<float>>> recon_arena_;
  std::vector<std::vector<transport::Arrival>> stale_uploads_;
  // CloudSync scratch: stale WAN arrivals and compressed-reconstruction
  // storage (serial stage, one of each).
  std::vector<transport::Arrival> wan_stale_;
  std::vector<std::vector<float>> wan_arena_;
  RunHistory history_;
  std::size_t blends_ = 0;
  double blend_weight_sum_ = 0.0;
  CommStatsObserver comm_observer_;
  std::vector<StepObserver*> observers_;
  std::vector<float> server_velocity_;
  std::vector<std::size_t> steps_budget_;  // per-device local-step budget
  // One byte per device, NOT vector<bool>: flags are written concurrently
  // from the parallel training loop and bit-packed writes would race.
  std::vector<std::uint8_t> dropped_this_step_;
  std::vector<std::uint8_t> download_lost_;
  std::size_t straggler_drops_ = 0;
};

}  // namespace middlefl::core
