// The MIDDLE training loop (paper Algorithm 1).
//
// Each time step: every edge selects K of its currently-connected devices
// (in-edge device selection), each selected device initializes its local
// model — newly-arrived devices apply the algorithm's on-device rule, all
// others download the edge model — runs I local SGD steps and uploads; the
// edge FedAvgs the uploads (Eq. 6); every T_c steps the cloud FedAvgs the
// edge models with participating-sample weights d_hat_n (Eq. 7) and
// broadcasts the global model down to every edge and device.
//
// Device training within a step is embarrassingly parallel: all selected
// (edge, device) pairs across ALL edges form one flat task list that runs
// on the thread pool in a single parallel_for, so a K-device edge never
// serializes behind its neighbours. Edge aggregation fans out per edge the
// same way. All randomness is keyed on (seed, entity, step) and all
// parallel reductions commit serially in fixed task order, so results are
// bit-identical regardless of thread count.
#pragma once

#include <functional>
#include <limits>
#include <memory>

#include "core/algorithms.hpp"
#include "core/comm_stats.hpp"
#include "core/compression.hpp"
#include "core/entities.hpp"
#include "core/metrics.hpp"
#include "core/similarity_cache.hpp"
#include "data/partition.hpp"
#include "mobility/mobility_model.hpp"
#include "nn/model_factory.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"
#include "parallel/thread_pool.hpp"

namespace middlefl::core {

struct SimulationConfig {
  std::size_t select_per_edge = 5;   // K
  std::size_t local_steps = 10;      // I
  std::size_t cloud_interval = 10;   // T_c
  std::size_t batch_size = 16;
  std::size_t total_steps = 1000;    // T
  /// Per-step learning rate; defaults to constant 0.01 (the paper's SGD
  /// setting) when empty.
  optim::LrSchedule lr_schedule;
  /// Clear momentum/Adam state whenever a device starts a round from a
  /// downloaded/blended model (the usual FL convention).
  bool reset_optimizer_each_round = true;
  /// Algorithm 1 lines 14-15: push the fresh global model to every device
  /// at sync. Disabling is an ablation that lets local models drift longer.
  bool broadcast_to_devices = true;
  /// Eq. 7 participating-sample weights d_hat_n; false = uniform edge
  /// weights (ablation 4 in DESIGN.md).
  bool weighted_cloud_aggregation = true;

  std::size_t eval_every = 10;
  /// Subsample size for periodic evaluation; 0 = the full test set.
  std::size_t eval_samples = 1000;
  bool track_per_class = false;
  /// Record each edge model's test accuracy at eval points.
  bool track_edge_accuracy = false;

  /// Probability that a selected device's upload is lost (straggler /
  /// radio failure injection). The device still trains — its local model
  /// keeps the update — but the edge aggregates without it that step.
  double upload_failure_prob = 0.0;
  /// FedProx proximal coefficient for local training (0 = plain SGD).
  double prox_mu = 0.0;
  /// Global-norm gradient clipping threshold for local steps (0 = off).
  double clip_norm = 0.0;
  /// Server momentum (FedAvgM): the cloud applies
  /// v = m*v + (aggregate - w_c); w_c += v at each sync. 0 disables.
  double server_momentum = 0.0;

  /// System heterogeneity: relative compute speed per device (1.0 =
  /// nominal; empty = homogeneous). With a positive `round_deadline`, a
  /// selected device only completes min(I, floor(deadline * speed)) local
  /// steps within the time step; devices that cannot finish even one step
  /// are dropped from the round (counted by straggler_drops()). This
  /// models the paper's premise that "any device can complete the entire
  /// one-round process in a time step" breaking down on slow hardware.
  std::vector<double> device_speeds;
  /// Local steps a speed-1.0 device can complete per time step; 0 = no
  /// deadline (every device always finishes all I steps).
  double round_deadline = 0.0;
  /// Lossy compression applied to device->edge uploads (the edge
  /// aggregates the reconstruction; upload_bytes() tracks the wire size).
  CompressionConfig upload_compression;

  std::uint64_t seed = 42;
  /// Train selected devices on the global thread pool.
  bool parallel_devices = true;
  /// Reuse Eq. 11 selection scores across steps for (device, cloud)
  /// version pairs that have not changed. Pure acceleration: scores are
  /// bitwise identical with the cache on or off.
  bool use_similarity_cache = true;
};

class Simulation {
 public:
  /// `partition.device_indices.size()` fixes the device count and must
  /// match `mobility->num_devices()`. All models start from one common
  /// initialization drawn from cfg.seed.
  Simulation(SimulationConfig cfg, const nn::ModelSpec& model_spec,
             const optim::Optimizer& optimizer_prototype,
             const data::Dataset& train, const data::Partition& partition,
             const data::Dataset& test,
             std::unique_ptr<mobility::MobilityModel> mobility,
             AlgorithmSpec algorithm);

  /// Advances one time step (t starts at 1). Returns true if a cloud
  /// synchronization happened this step.
  bool step();

  /// Runs the remaining steps up to cfg.total_steps, evaluating on the
  /// configured schedule. `progress` (optional) is invoked after each
  /// evaluation with the fresh point.
  RunHistory run(
      const std::function<void(const EvalPoint&)>& progress = nullptr);

  /// Evaluates the current global model immediately and appends the point
  /// to the history.
  const EvalPoint& evaluate_now();

  /// Warm start: installs `params` (e.g. a loaded checkpoint) as the global
  /// model on the cloud, every edge and every device, exactly like a cloud
  /// synchronization broadcast. Size must equal the model's param count.
  void warm_start(std::span<const float> params);

  // --- Introspection (benches, tests) ---
  std::size_t current_step() const noexcept { return t_; }
  std::size_t num_devices() const noexcept { return devices_.size(); }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  std::span<const float> cloud_params() const { return cloud_.params(); }
  std::span<const float> edge_params(std::size_t n) const {
    return edges_.at(n).params();
  }
  Device& device(std::size_t m) { return devices_.at(m); }
  const std::vector<std::size_t>& assignment() const {
    return mobility_->assignment();
  }
  /// Devices selected at the last step, grouped by edge.
  const std::vector<std::vector<std::size_t>>& last_selection() const {
    return last_selection_;
  }
  const RunHistory& history() const noexcept { return history_; }
  Evaluator& evaluator() noexcept { return *evaluator_; }
  const SimulationConfig& config() const noexcept { return cfg_; }

  /// Model-transfer counters accumulated since construction.
  const CommStats& comm_stats() const noexcept { return comm_; }
  /// Uploads dropped by failure injection so far.
  std::size_t failed_uploads() const noexcept { return failed_uploads_; }
  /// Selected devices dropped because they could not finish one local step
  /// before the round deadline.
  std::size_t straggler_drops() const noexcept { return straggler_drops_; }
  /// Simulated device->edge uplink bytes (after compression) so far.
  std::size_t upload_bytes() const noexcept { return upload_bytes_; }

  /// Mean total-variation skew of the CURRENT per-edge data mixtures
  /// relative to the global mixture (see core::mean_edge_skew).
  double current_edge_skew() const;

  /// Count of on-device aggregations applied so far and the running mean
  /// blend weight given to the carried local model.
  std::size_t on_device_aggregations() const noexcept { return blends_; }
  double mean_blend_weight() const noexcept {
    return blends_ == 0 ? 0.0 : blend_weight_sum_ / static_cast<double>(blends_);
  }
  /// Selection-score cache hit/miss counters (throughput introspection).
  const SimilarityCache& similarity_cache() const noexcept {
    return similarity_cache_;
  }

 private:
  void train_all_selected(const std::vector<std::size_t>& prev_assignment);
  void aggregate_edges();
  void cloud_sync();

  SimulationConfig cfg_;
  AlgorithmSpec algorithm_;
  std::vector<Device> devices_;
  std::vector<Edge> edges_;
  Cloud cloud_;
  std::unique_ptr<mobility::MobilityModel> mobility_;
  std::unique_ptr<Evaluator> evaluator_;
  parallel::StreamRng streams_;
  std::size_t t_ = 0;
  std::vector<std::vector<std::size_t>> last_selection_;
  // Edge snapshot taken at the start of the step so FedMes' prev-edge rule
  // reads w^t even while new edge models are being formed. The outer vector
  // and per-edge buffers are sized once and refilled in place each step.
  std::vector<std::vector<float>> edge_snapshot_;
  SimilarityCache similarity_cache_;
  // Step-scratch buffers, reused across steps to keep the hot loop
  // allocation-free: per-edge candidate membership, the flattened
  // (edge, device) training task list, and per-task result slots that the
  // parallel loop writes disjointly and step() reduces serially in task
  // order (the deterministic replacement for a mutex-guarded sum).
  std::vector<std::vector<std::size_t>> members_;
  struct TrainTask {
    std::size_t edge = 0;
    std::size_t device = 0;
  };
  std::vector<TrainTask> train_tasks_;
  std::vector<double> task_blend_weight_;
  std::vector<std::uint8_t> task_blended_;
  // Per-edge aggregation results, written in parallel and reduced serially.
  struct EdgeAggResult {
    std::size_t failed_uploads = 0;
    std::size_t upload_bytes = 0;
    double participating = 0.0;
  };
  std::vector<EdgeAggResult> edge_agg_results_;
  RunHistory history_;
  std::size_t blends_ = 0;
  double blend_weight_sum_ = 0.0;
  CommStats comm_;
  std::size_t failed_uploads_ = 0;
  std::size_t upload_bytes_ = 0;
  std::vector<float> server_velocity_;
  std::vector<std::size_t> steps_budget_;  // per-device local-step budget
  // One byte per device, NOT vector<bool>: flags are written concurrently
  // from the parallel training loop and bit-packed writes would race.
  std::vector<std::uint8_t> dropped_this_step_;
  std::size_t straggler_drops_ = 0;
};

}  // namespace middlefl::core
