#include "core/algorithms.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "core/similarity.hpp"

namespace middlefl::core {

std::string to_string(OnDeviceRule rule) {
  switch (rule) {
    case OnDeviceRule::kDownloadEdge: return "download-edge";
    case OnDeviceRule::kKeepLocal: return "keep-local";
    case OnDeviceRule::kPlainAverage: return "plain-average";
    case OnDeviceRule::kSimilarityBlend: return "similarity-blend";
    case OnDeviceRule::kFixedAlpha: return "fixed-alpha";
    case OnDeviceRule::kPrevEdgeAverage: return "prev-edge-average";
    case OnDeviceRule::kSignedBlend: return "signed-blend (ablation)";
  }
  return "?";
}

std::string to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMiddle: return "MIDDLE";
    case Algorithm::kOort: return "OORT";
    case Algorithm::kFedMes: return "FedMes";
    case Algorithm::kGreedy: return "Greedy";
    case Algorithm::kEnsemble: return "Ensemble";
    case Algorithm::kHierFavg: return "HierFAVG";
  }
  return "?";
}

Algorithm parse_algorithm(const std::string& name) {
  std::string lower;
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "middle") return Algorithm::kMiddle;
  if (lower == "oort") return Algorithm::kOort;
  if (lower == "fedmes") return Algorithm::kFedMes;
  if (lower == "greedy") return Algorithm::kGreedy;
  if (lower == "ensemble") return Algorithm::kEnsemble;
  if (lower == "hierfavg" || lower == "general") return Algorithm::kHierFavg;
  throw std::invalid_argument("unknown algorithm '" + name + "'");
}

AlgorithmSpec make_algorithm(Algorithm algorithm) {
  AlgorithmSpec spec;
  spec.name = to_string(algorithm);
  switch (algorithm) {
    case Algorithm::kMiddle:
      spec.selection = std::make_unique<SimilaritySelection>();
      spec.on_move = OnDeviceRule::kSimilarityBlend;
      break;
    case Algorithm::kOort:
      spec.selection = std::make_unique<StatUtilitySelection>();
      spec.on_move = OnDeviceRule::kDownloadEdge;
      break;
    case Algorithm::kFedMes:
      spec.selection = std::make_unique<RandomSelection>();
      spec.on_move = OnDeviceRule::kPrevEdgeAverage;
      break;
    case Algorithm::kGreedy:
      spec.selection = std::make_unique<StatUtilitySelection>();
      spec.on_move = OnDeviceRule::kKeepLocal;
      break;
    case Algorithm::kEnsemble:
      spec.selection = std::make_unique<StatUtilitySelection>();
      spec.on_move = OnDeviceRule::kPlainAverage;
      break;
    case Algorithm::kHierFavg:
      spec.selection = std::make_unique<RandomSelection>();
      spec.on_move = OnDeviceRule::kDownloadEdge;
      break;
  }
  return spec;
}

AlgorithmSpec make_algorithm(const std::string& name) {
  return make_algorithm(parse_algorithm(name));
}

const std::vector<std::string>& algorithm_names() {
  static const std::vector<std::string> names = {
      "middle", "oort", "fedmes", "greedy", "ensemble", "hierfavg"};
  return names;
}

double apply_on_device_rule(OnDeviceRule rule,
                            std::span<const float> edge_params,
                            std::span<const float> local_params,
                            std::span<const float> prev_edge_params,
                            double fixed_alpha, std::span<float> out) {
  if (edge_params.size() != out.size() ||
      local_params.size() != out.size()) {
    throw std::invalid_argument("apply_on_device_rule: size mismatch");
  }
  switch (rule) {
    case OnDeviceRule::kDownloadEdge:
      std::copy(edge_params.begin(), edge_params.end(), out.begin());
      return 0.0;
    case OnDeviceRule::kKeepLocal:
      std::copy(local_params.begin(), local_params.end(), out.begin());
      return 1.0;
    case OnDeviceRule::kPlainAverage:
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = 0.5f * (edge_params[i] + local_params[i]);
      }
      return 0.5;
    case OnDeviceRule::kSimilarityBlend:
      return on_device_aggregate(edge_params, local_params, out);
    case OnDeviceRule::kFixedAlpha:
      on_device_aggregate_fixed(edge_params, local_params, fixed_alpha, out);
      return 1.0 - fixed_alpha;
    case OnDeviceRule::kSignedBlend:
      return on_device_aggregate_signed(edge_params, local_params, out);
    case OnDeviceRule::kPrevEdgeAverage: {
      if (prev_edge_params.size() != out.size()) {
        throw std::invalid_argument(
            "apply_on_device_rule: kPrevEdgeAverage needs the previous edge "
            "model");
      }
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = 0.5f * (edge_params[i] + prev_edge_params[i]);
      }
      return 0.5;
    }
  }
  throw std::logic_error("apply_on_device_rule: unhandled rule");
}

}  // namespace middlefl::core
