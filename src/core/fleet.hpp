// Fleet-scale device management: the sharded DeviceRegistry and the pooled
// training runtimes behind lazy (virtual) device state.
//
// A fully-materialized Device costs O(param_count) for the model plus the
// same again for gradients and optimizer slots — a few thousand devices
// exhaust RAM long before the paper's millions-of-users regime. In lazy
// mode a Device holds only (a) a refcounted core::Snapshot into the COW
// SnapshotStore and (b) a compact at-rest delta against that snapshot,
// encoded with the transport layer's q8/topk codecs (lossless verbatim
// storage by default). Dense parameters exist only while the device is
// selected for training in the current step: they materialize into a
// pooled scratch buffer checked out from this registry, and de-materialize
// back to snapshot + delta when the per-edge chain settles its members
// after aggregation. Peak RSS therefore scales with K * num_edges
// (selected devices per step), not with fleet size.
//
// The registry shards by device id (fixed power-of-two shard count, open
// addressing within a shard) so lookups, mobility updates and the per-edge
// task-graph chains touch devices without walking cold state, and so the
// freelists feeding materialization (resident buffers, recycled
// EncodedDelta blocks) are contended per shard, not globally. Sequential
// ids — the Simulation's layout — additionally hit a dense pointer table
// and skip probing entirely.
//
// Thread-safety contract: insert()/erase()/configure()/set_prototypes()
// are construction-time operations (no concurrent calls); at()/find() are
// safe concurrently with each other and with the freelist and counter
// methods, which the parallel edge chains call for disjoint devices.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/entities.hpp"
#include "data/sampler.hpp"
#include "nn/sequential.hpp"
#include "optim/optimizer.hpp"
#include "parallel/rng.hpp"
#include "tensor/tensor.hpp"
#include "transport/compression.hpp"

namespace middlefl::core {

/// Configuration of the lazy-device machinery, embedded in
/// SimulationConfig. The defaults preserve bitwise parity with the eager
/// path: lossless at-rest storage keeps the exact float stream, so the
/// pipeline_test goldens are unchanged with lazy devices enabled.
struct FleetConfig {
  /// Virtual devices: snapshot + at-rest delta, materialized only while
  /// training. Disable to give every device its own model and optimizer
  /// (the historical eager layout; O(fleet) memory).
  bool lazy_devices = true;
  /// At-rest storage codec for a device's divergence from its base
  /// snapshot. kNone (default) stores the parameters verbatim —
  /// bitwise-lossless. kQuant8/kTopK bound memory harder but make
  /// settle-out lossy; opt-in per scenario (see ARCHITECTURE.md for when
  /// that is safe).
  transport::CompressionConfig at_rest{};
  /// Registry shard count, rounded up to a power of two; 0 = auto (64).
  std::size_t shards = 0;
};

/// One pooled training context: a scratch model (parameters + gradients),
/// an optimizer instance and a minibatch buffer. A per-edge chain checks
/// one out for the duration of its LocalTrain phase and runs every
/// selected member through it, so training memory is O(chains), not
/// O(devices).
class DeviceRuntime {
 public:
  nn::Sequential& model() noexcept { return *model_; }
  optim::Optimizer& optimizer() noexcept { return *optimizer_; }
  data::Minibatch& batch() noexcept { return batch_; }

 private:
  friend class DeviceRegistry;
  DeviceRuntime() = default;

  std::unique_ptr<nn::Sequential> model_;
  std::unique_ptr<optim::Optimizer> optimizer_;
  data::Minibatch batch_;
};

/// Sharded home of every Device plus the pooled resources lazy devices
/// borrow: resident parameter buffers, recycled at-rest delta blocks and
/// training runtimes. Also the fleet's accounting point (materializations,
/// resident devices, at-rest bytes) feeding the obs gauges.
class DeviceRegistry {
 public:
  DeviceRegistry() { configure(FleetConfig{}); }

  /// (Re)applies `config`; only valid while the registry is empty.
  void configure(const FleetConfig& config);
  const FleetConfig& config() const noexcept { return cfg_; }

  /// Installs the model/optimizer prototypes pooled runtimes are cloned
  /// from. Required before acquire_runtime() and before lazy devices
  /// train. The prototype model also fixes param_count() and the
  /// canonical initial dropout stream every virtual device starts from.
  void set_prototypes(const nn::Sequential& model,
                      const optim::Optimizer& optimizer);
  bool has_prototypes() const noexcept { return proto_model_ != nullptr; }
  std::size_t param_count() const noexcept { return param_count_; }
  /// True when the prototype model contains Dropout layers, i.e. when the
  /// per-device dropout RNG stream must be saved/restored around pooled
  /// training (see Device::train).
  bool model_has_dropout() const noexcept { return has_dropout_; }
  const parallel::Xoshiro256& initial_dropout_rng() const;

  // --- Device table -------------------------------------------------------
  /// Takes ownership of `device`, keyed by device.id(). Throws
  /// std::invalid_argument on a duplicate id.
  Device& insert(Device device);
  /// Removes the device with `id`, returning its pooled state to the
  /// freelists. Returns false when absent.
  bool erase(std::size_t id);
  Device* find(std::size_t id) noexcept;
  const Device* find(std::size_t id) const noexcept;
  /// Throws std::out_of_range when absent.
  Device& at(std::size_t id);
  const Device& at(std::size_t id) const;
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  std::size_t num_shards() const noexcept { return shards_.size(); }
  std::size_t shard_of(std::size_t id) const noexcept {
    return hash_id(id) & shard_mask_;
  }

  // --- Pooled training runtimes ------------------------------------------
  /// Checks a runtime out (creating one from the prototypes on pool
  /// exhaustion). Pair with release_runtime.
  DeviceRuntime* acquire_runtime();
  void release_runtime(DeviceRuntime* runtime);

  // --- Per-shard freelists (lazy device materialization) -----------------
  /// Checks out a resident parameter buffer for device `id` (contents
  /// unspecified; the caller fills it via Tensor::reset_for_overwrite).
  /// Counts one materialization and one resident device.
  tensor::Tensor acquire_resident(std::size_t id);
  void release_resident(std::size_t id, tensor::Tensor buffer);
  /// Recycled at-rest delta block for device `id` (cleared).
  std::unique_ptr<transport::EncodedDelta> acquire_delta(std::size_t id);
  void release_delta(std::size_t id,
                     std::unique_ptr<transport::EncodedDelta> delta);

  // --- Fleet accounting (relaxed atomics; exact at serial points) --------
  std::uint64_t materializations() const noexcept {
    return materializations_.load(std::memory_order_relaxed);
  }
  std::size_t resident_devices() const noexcept {
    const auto now = resident_now_.load(std::memory_order_relaxed);
    return now > 0 ? static_cast<std::size_t>(now) : 0;
  }
  /// High-water mark of concurrently resident devices since the last
  /// reset_resident_peak() (the per-step gauge).
  std::size_t resident_peak() const noexcept {
    return resident_peak_.load(std::memory_order_relaxed);
  }
  void reset_resident_peak() noexcept {
    resident_peak_.store(resident_devices(), std::memory_order_relaxed);
  }
  std::size_t delta_bytes_at_rest() const noexcept {
    const auto bytes = delta_bytes_.load(std::memory_order_relaxed);
    return bytes > 0 ? static_cast<std::size_t>(bytes) : 0;
  }
  /// Called by devices when an at-rest delta is installed (+bytes) or
  /// invalidated (-bytes).
  void add_delta_bytes(std::int64_t delta) noexcept {
    delta_bytes_.fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  struct Entry {
    static constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);
    static constexpr std::size_t kTombstone = static_cast<std::size_t>(-2);
    std::size_t id = 0;
    std::size_t slot = kEmpty;
  };

  struct Shard {
    std::deque<Device> slots;             // stable addresses
    std::vector<std::size_t> free_slots;  // recycled (erased) slot indices
    std::vector<Entry> table;             // open addressing: id -> slot
    std::size_t occupied = 0;             // live entries
    std::size_t tombstones = 0;
    std::mutex freelist_mutex;
    std::vector<tensor::Tensor> resident_free;
    std::vector<std::unique_ptr<transport::EncodedDelta>> delta_free;
  };

  static std::uint64_t hash_id(std::size_t id) noexcept {
    return parallel::splitmix64(static_cast<std::uint64_t>(id));
  }
  Entry* probe(Shard& shard, std::size_t id) noexcept;
  void rehash(Shard& shard, std::size_t capacity);

  FleetConfig cfg_;
  std::size_t shard_mask_ = 0;
  // deque: Shard is immovable (mutex) and the count is fixed by configure.
  std::deque<Shard> shards_;
  std::size_t size_ = 0;
  // Dense id -> device fast path for the sequential-id layout the
  // Simulation produces; entries are only added for ids that extend or fit
  // the current range (sparse churned ids fall back to probing).
  std::vector<Device*> dense_;

  std::unique_ptr<nn::Sequential> proto_model_;
  std::unique_ptr<optim::Optimizer> proto_optimizer_;
  std::size_t param_count_ = 0;
  bool has_dropout_ = false;

  std::mutex runtime_mutex_;
  std::vector<std::unique_ptr<DeviceRuntime>> runtime_pool_;
  std::vector<DeviceRuntime*> runtime_free_;

  std::atomic<std::uint64_t> materializations_{0};
  std::atomic<std::int64_t> resident_now_{0};
  std::atomic<std::size_t> resident_peak_{0};
  std::atomic<std::int64_t> delta_bytes_{0};
};

}  // namespace middlefl::core
