// Version-keyed cache of Eq. 11 selection utilities.
//
// A device's selection score U(w_c, w_m - w_c) only changes when the device
// itself trains (w_m moves) or the cloud synchronizes (w_c moves). The
// simulator previously recomputed the score from scratch for EVERY
// connected candidate at EVERY edge on EVERY step — with ~100 devices and K
// selected per edge, roughly half those sweeps over the full parameter
// vector were redundant. The cache keys each entry on the pair
// (device parameter version, cloud parameter version); versions are bumped
// by Device/Cloud on every mutation, so staleness is impossible by
// construction and no explicit invalidation hooks are needed.
//
// Concurrency: per-edge task chains run selection for different edges at
// the same time, but a device belongs to exactly one edge per step, so all
// entry reads/writes stay disjoint. The only shared mutation is the
// hit/miss counters, which are relaxed atomics — totals at serial points
// are scheduling-independent because integer addition commutes. resize()
// and clear() are serial-only operations.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace middlefl::core {

class SimilarityCache {
 public:
  /// Prepares entries for device ids [0, num_devices); existing entries
  /// are preserved when growing.
  void resize(std::size_t num_devices) { entries_.resize(num_devices); }

  std::size_t size() const noexcept { return entries_.size(); }

  /// Returns the cached utility when the entry matches both versions.
  std::optional<double> lookup(std::size_t device_id,
                               std::uint64_t device_version,
                               std::uint64_t cloud_version) const noexcept {
    if (device_id >= entries_.size()) return std::nullopt;
    const Entry& entry = entries_[device_id];
    if (entry.valid && entry.device_version == device_version &&
        entry.cloud_version == cloud_version) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return entry.value;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }

  void store(std::size_t device_id, std::uint64_t device_version,
             std::uint64_t cloud_version, double value) {
    if (device_id >= entries_.size()) entries_.resize(device_id + 1);
    entries_[device_id] =
        Entry{device_version, cloud_version, value, /*valid=*/true};
  }

  /// Drops every entry (e.g. when the model is swapped wholesale).
  void clear() noexcept {
    for (Entry& entry : entries_) entry.valid = false;
  }

  // Hit/miss counters since construction (throughput introspection).
  std::size_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::size_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::uint64_t device_version = 0;
    std::uint64_t cloud_version = 0;
    double value = 0.0;
    bool valid = false;
  };
  std::vector<Entry> entries_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
};

}  // namespace middlefl::core
