#include "core/snapshot.hpp"

#include <algorithm>

namespace middlefl::core {
namespace detail {

struct BufferPool {
  std::mutex mutex;
  std::vector<std::vector<float>> free;
};

void BlockRecycler::operator()(const ParamBlock* block) const noexcept {
  if (block == nullptr) return;
  // Salvage the buffer before destroying the block; capacity survives the
  // round trip, so steady-state publishes stop allocating.
  std::vector<float> buffer = std::move(const_cast<ParamBlock*>(block)->data_);
  delete block;
  if (pool != nullptr && buffer.capacity() > 0) {
    std::lock_guard lock(pool->mutex);
    pool->free.push_back(std::move(buffer));
  }
}

}  // namespace detail

void SnapshotSlot::publish(Snapshot snapshot) {
  const std::uint64_t v = snapshot == nullptr ? 0 : snapshot->version();
  std::lock_guard lock(mutex_);
  current_ = std::move(snapshot);
  // Release-store after the pointer swap: a reader that sees the new stamp
  // and takes the mutex observes the matching pointer (the mutex orders
  // it); a reader that sees the old stamp keeps serving the old immutable
  // block, which stays alive through its own reference.
  version_.store(v, std::memory_order_release);
}

Snapshot SnapshotSlot::acquire() const {
  std::lock_guard lock(mutex_);
  return current_;
}

SnapshotStore::SnapshotStore() : pool_(std::make_shared<detail::BufferPool>()) {}

SnapshotStore& SnapshotStore::global() {
  static SnapshotStore store;
  return store;
}

std::vector<float> SnapshotStore::borrow(std::size_t size) {
  std::vector<float> buffer;
  {
    std::lock_guard lock(pool_->mutex);
    if (!pool_->free.empty()) {
      buffer = std::move(pool_->free.back());
      pool_->free.pop_back();
    }
  }
  buffer.resize(size);
  return buffer;
}

Snapshot SnapshotStore::seal(std::vector<float>&& data) {
  auto* block = new ParamBlock(std::move(data), next_version());
  return Snapshot(block, detail::BlockRecycler{pool_});
}

Snapshot SnapshotStore::publish(std::span<const float> data) {
  std::vector<float> buffer = borrow(data.size());
  std::copy(data.begin(), data.end(), buffer.begin());
  return seal(std::move(buffer));
}

std::size_t SnapshotStore::pooled() const {
  std::lock_guard lock(pool_->mutex);
  return pool_->free.size();
}

}  // namespace middlefl::core
