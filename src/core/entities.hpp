// The three tiers of the hierarchy: Device, Edge, Cloud.
//
// A Device owns its data partition, a private model instance (the flat
// local model w_m lives inside it) and an optimizer; its train() is the
// I-step local SGD of Eq. (1)/(5). Edges and the cloud are parameter
// holders with FedAvg aggregation (Eq. 6/7). Device training is the
// simulator's unit of parallelism — all state touched by train() is private
// to the device.
//
// Parameters are held copy-on-write through core::Snapshot: adopt() shares
// an immutable published block (a broadcast or an edge download is a
// refcount bump), and the private model buffer materializes only when the
// device first writes — set_params (a blend) or train (local SGD). Version
// stamps come from the process-global SnapshotStore, so an unchanged
// version still guarantees unchanged content for the SimilarityCache.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/snapshot.hpp"
#include "data/dataset.hpp"
#include "data/sampler.hpp"
#include "nn/sequential.hpp"
#include "optim/optimizer.hpp"
#include "parallel/rng.hpp"

namespace middlefl::core {

struct DeviceTrainStats {
  /// Mean per-sample cross-entropy across all local steps.
  double mean_loss = 0.0;
  /// Mean squared per-sample loss on the final local batch (the Oort
  /// statistical-utility ingredient).
  double mean_sq_loss = 0.0;
  std::size_t batches = 0;
};

class Device {
 public:
  Device(std::size_t id, data::DataView data,
         std::unique_ptr<nn::Sequential> model,
         std::unique_ptr<optim::Optimizer> optimizer);

  Device(Device&&) = default;
  Device& operator=(Device&&) = default;

  std::size_t id() const noexcept { return id_; }
  /// d_m: the number of local data samples (the FedAvg weight).
  std::size_t data_size() const noexcept { return data_.size(); }
  const data::DataView& data() const noexcept { return data_; }

  /// The current local model w_m: the shared snapshot when one is adopted,
  /// the private model buffer otherwise.
  std::span<const float> params() const {
    return shared_ ? shared_->span()
                   : std::span<const float>(model_->parameters());
  }
  /// Installs a private copy of `params` (the copy-on-write write path).
  void set_params(std::span<const float> params) {
    model_->set_parameters(params);
    shared_.reset();
    params_version_ = SnapshotStore::global().next_version();
  }
  /// Shares `snapshot` without copying; the device's version becomes the
  /// snapshot's. The private buffer is left stale until the next write.
  void adopt(Snapshot snapshot);
  /// True while the device reads a shared snapshot (no private copy yet).
  bool shares_snapshot() const noexcept { return shared_ != nullptr; }

  /// Version stamp of the current parameters, changed on every mutation
  /// (set_params, adopt of a different snapshot, train). The
  /// SimilarityCache keys on it: an unchanged version guarantees an
  /// unchanged selection score.
  std::uint64_t params_version() const noexcept { return params_version_; }

  /// Runs `local_steps` SGD iterations (Eq. 5) from the current parameters
  /// on minibatches of `batch_size` drawn with `rng`. When
  /// `reset_optimizer` is set, momentum/Adam state is cleared first (a
  /// fresh round starts from a freshly downloaded model). `prox_mu` > 0
  /// adds a FedProx proximal term mu/2 |w - w_start|^2 anchored at the
  /// round's starting parameters, damping client drift on Non-IID data.
  /// `clip_norm` > 0 rescales each step's gradient to at most that L2
  /// norm before the optimizer update (global-norm clipping).
  DeviceTrainStats train(std::size_t local_steps, std::size_t batch_size,
                         double learning_rate, bool reset_optimizer,
                         parallel::Xoshiro256& rng, double prox_mu = 0.0,
                         double clip_norm = 0.0);

  /// Oort statistical utility: d_m * sqrt(mean squared sample loss) from
  /// the most recent training round; nullopt before the first round (such
  /// devices are prioritized for exploration).
  std::optional<double> stat_utility() const noexcept { return stat_utility_; }
  /// Time step of the last participation (for staleness accounting).
  std::optional<std::size_t> last_trained_step() const noexcept {
    return last_trained_step_;
  }
  void mark_trained(std::size_t step) noexcept { last_trained_step_ = step; }
  /// Clears training history (used at global synchronization barriers in
  /// ablations; the default simulator keeps history across syncs).
  void clear_history() noexcept {
    stat_utility_.reset();
    last_trained_step_.reset();
  }

  /// The private model, with any shared snapshot materialized into it
  /// first so its parameters are current.
  nn::Sequential& model() {
    materialize();
    return *model_;
  }

 private:
  /// Copies an adopted snapshot into the private buffer and drops the
  /// share. Content (and version) are unchanged.
  void materialize() {
    if (shared_) {
      model_->set_parameters(shared_->span());
      shared_.reset();
    }
  }

  std::size_t id_;
  data::DataView data_;
  std::unique_ptr<nn::Sequential> model_;
  std::unique_ptr<optim::Optimizer> optimizer_;
  // Reused across all local SGD steps so per-step sampling is
  // allocation-free in the steady state (see data::sample_minibatch_into).
  data::Minibatch batch_scratch_;
  std::optional<double> stat_utility_;
  std::optional<std::size_t> last_trained_step_;
  Snapshot shared_;
  std::uint64_t params_version_ = 0;
};

class Edge {
 public:
  Edge(std::size_t id, std::size_t param_count);

  std::size_t id() const noexcept { return id_; }
  std::span<const float> params() const noexcept { return snapshot_->span(); }
  /// Publishes an immutable copy of `params` as this edge's model.
  void set_params(std::span<const float> params);
  /// Shares an already-published block (e.g. the cloud's broadcast).
  void adopt(Snapshot snapshot);
  /// The current model as a shareable snapshot (O(1)).
  const Snapshot& snapshot() const noexcept { return snapshot_; }

  /// Accumulates participating-sample weight toward d_hat_n (Eq. 7).
  void add_participation(double weight) noexcept {
    participation_weight_ += weight;
  }
  double participation_weight() const noexcept {
    return participation_weight_;
  }
  void reset_participation() noexcept { participation_weight_ = 0.0; }

 private:
  std::size_t id_;
  Snapshot snapshot_;
  double participation_weight_ = 0.0;
};

class Cloud {
 public:
  explicit Cloud(std::size_t param_count);

  std::span<const float> params() const noexcept { return snapshot_->span(); }
  /// Publishes an immutable copy of `params` as the global model.
  void set_params(std::span<const float> params);
  /// Installs an already-published block as the global model.
  void adopt(Snapshot snapshot);
  /// The global model as a shareable snapshot: the broadcast after a cloud
  /// sync hands this one block to every edge and device.
  const Snapshot& snapshot() const noexcept { return snapshot_; }

  /// Version stamp of the current global model for the SimilarityCache;
  /// changes exactly when the parameters do (a new block is installed).
  std::uint64_t params_version() const noexcept {
    return snapshot_->version();
  }

 private:
  Snapshot snapshot_;
};

}  // namespace middlefl::core
