// The three tiers of the hierarchy: Device, Edge, Cloud.
//
// A Device owns its data partition, a private model instance (the flat
// local model w_m lives inside it) and an optimizer; its train() is the
// I-step local SGD of Eq. (1)/(5). Edges and the cloud are parameter
// holders with FedAvg aggregation (Eq. 6/7). Device training is the
// simulator's unit of parallelism — all state touched by train() is private
// to the device.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "nn/sequential.hpp"
#include "optim/optimizer.hpp"
#include "parallel/rng.hpp"

namespace middlefl::core {

struct DeviceTrainStats {
  /// Mean per-sample cross-entropy across all local steps.
  double mean_loss = 0.0;
  /// Mean squared per-sample loss on the final local batch (the Oort
  /// statistical-utility ingredient).
  double mean_sq_loss = 0.0;
  std::size_t batches = 0;
};

class Device {
 public:
  Device(std::size_t id, data::DataView data,
         std::unique_ptr<nn::Sequential> model,
         std::unique_ptr<optim::Optimizer> optimizer);

  Device(Device&&) = default;
  Device& operator=(Device&&) = default;

  std::size_t id() const noexcept { return id_; }
  /// d_m: the number of local data samples (the FedAvg weight).
  std::size_t data_size() const noexcept { return data_.size(); }
  const data::DataView& data() const noexcept { return data_; }

  std::span<const float> params() const { return model_->parameters(); }
  void set_params(std::span<const float> params) {
    model_->set_parameters(params);
    ++params_version_;
  }

  /// Monotonic counter bumped on every parameter mutation (set_params and
  /// train). The SimilarityCache keys on it: an unchanged version
  /// guarantees an unchanged selection score.
  std::uint64_t params_version() const noexcept { return params_version_; }

  /// Runs `local_steps` SGD iterations (Eq. 5) from the current parameters
  /// on minibatches of `batch_size` drawn with `rng`. When
  /// `reset_optimizer` is set, momentum/Adam state is cleared first (a
  /// fresh round starts from a freshly downloaded model). `prox_mu` > 0
  /// adds a FedProx proximal term mu/2 |w - w_start|^2 anchored at the
  /// round's starting parameters, damping client drift on Non-IID data.
  /// `clip_norm` > 0 rescales each step's gradient to at most that L2
  /// norm before the optimizer update (global-norm clipping).
  DeviceTrainStats train(std::size_t local_steps, std::size_t batch_size,
                         double learning_rate, bool reset_optimizer,
                         parallel::Xoshiro256& rng, double prox_mu = 0.0,
                         double clip_norm = 0.0);

  /// Oort statistical utility: d_m * sqrt(mean squared sample loss) from
  /// the most recent training round; nullopt before the first round (such
  /// devices are prioritized for exploration).
  std::optional<double> stat_utility() const noexcept { return stat_utility_; }
  /// Time step of the last participation (for staleness accounting).
  std::optional<std::size_t> last_trained_step() const noexcept {
    return last_trained_step_;
  }
  void mark_trained(std::size_t step) noexcept { last_trained_step_ = step; }
  /// Clears training history (used at global synchronization barriers in
  /// ablations; the default simulator keeps history across syncs).
  void clear_history() noexcept {
    stat_utility_.reset();
    last_trained_step_.reset();
  }

  nn::Sequential& model() noexcept { return *model_; }

 private:
  std::size_t id_;
  data::DataView data_;
  std::unique_ptr<nn::Sequential> model_;
  std::unique_ptr<optim::Optimizer> optimizer_;
  std::optional<double> stat_utility_;
  std::optional<std::size_t> last_trained_step_;
  std::uint64_t params_version_ = 0;
};

class Edge {
 public:
  Edge(std::size_t id, std::size_t param_count)
      : id_(id), params_(param_count, 0.0f) {}

  std::size_t id() const noexcept { return id_; }
  std::span<const float> params() const noexcept { return params_; }
  std::span<float> mutable_params() noexcept { return params_; }
  void set_params(std::span<const float> params);

  /// Accumulates participating-sample weight toward d_hat_n (Eq. 7).
  void add_participation(double weight) noexcept {
    participation_weight_ += weight;
  }
  double participation_weight() const noexcept {
    return participation_weight_;
  }
  void reset_participation() noexcept { participation_weight_ = 0.0; }

 private:
  std::size_t id_;
  std::vector<float> params_;
  double participation_weight_ = 0.0;
};

class Cloud {
 public:
  explicit Cloud(std::size_t param_count) : params_(param_count, 0.0f) {}

  std::span<const float> params() const noexcept { return params_; }
  std::span<float> mutable_params() noexcept { return params_; }
  void set_params(std::span<const float> params);

  /// Monotonic counter for the SimilarityCache. set_params bumps it;
  /// callers that write through mutable_params() must call bump_version()
  /// afterwards.
  std::uint64_t params_version() const noexcept { return params_version_; }
  void bump_version() noexcept { ++params_version_; }

 private:
  std::vector<float> params_;
  std::uint64_t params_version_ = 0;
};

}  // namespace middlefl::core
