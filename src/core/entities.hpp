// The three tiers of the hierarchy: Device, Edge, Cloud.
//
// A Device owns its data partition, a private model instance (the flat
// local model w_m lives inside it) and an optimizer; its train() is the
// I-step local SGD of Eq. (1)/(5). Edges and the cloud are parameter
// holders with FedAvg aggregation (Eq. 6/7). Device training is the
// simulator's unit of parallelism — all state touched by train() is private
// to the device.
//
// Parameters are held copy-on-write through core::Snapshot: adopt() shares
// an immutable published block (a broadcast or an edge download is a
// refcount bump), and the private model buffer materializes only when the
// device first writes — set_params (a blend) or train (local SGD). Version
// stamps come from the process-global SnapshotStore, so an unchanged
// version still guarantees unchanged content for the SimilarityCache.
//
// Devices come in two layouts:
//   eager   — the historical form: the device owns a private
//             nn::Sequential + optimizer (O(param_count) each, forever).
//   lazy    — fleet-scale virtual state (see core/fleet.hpp): the device
//             holds a base Snapshot plus an at-rest EncodedDelta and
//             borrows pooled buffers from its DeviceRegistry only while
//             dense parameters are actually needed. Lifecycle:
//             shared snapshot -> resident (materialized) -> settled
//             (snapshot + delta at rest). With the default lossless
//             at-rest codec the float stream is bitwise identical to the
//             eager path (pinned by pipeline_test and fleet_test).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/snapshot.hpp"
#include "data/dataset.hpp"
#include "data/sampler.hpp"
#include "nn/sequential.hpp"
#include "optim/optimizer.hpp"
#include "parallel/rng.hpp"
#include "tensor/tensor.hpp"
#include "transport/compression.hpp"

namespace middlefl::core {

class DeviceRegistry;
class DeviceRuntime;

struct DeviceTrainStats {
  /// Mean per-sample cross-entropy across all local steps.
  double mean_loss = 0.0;
  /// Mean squared per-sample loss on the final local batch (the Oort
  /// statistical-utility ingredient).
  double mean_sq_loss = 0.0;
  std::size_t batches = 0;
};

class Device {
 public:
  /// Eager device: owns a materialized model + optimizer.
  Device(std::size_t id, data::DataView data,
         std::unique_ptr<nn::Sequential> model,
         std::unique_ptr<optim::Optimizer> optimizer);
  /// Lazy (virtual) device: starts sharing `base` (O(1) memory) and
  /// borrows pooled state from `fleet` — which must outlive the device —
  /// whenever dense parameters are needed.
  Device(std::size_t id, data::DataView data, Snapshot base,
         DeviceRegistry* fleet);

  Device(Device&&) = default;
  Device& operator=(Device&&) = default;

  std::size_t id() const noexcept { return id_; }
  /// d_m: the number of local data samples (the FedAvg weight).
  std::size_t data_size() const noexcept { return data_.size(); }
  const data::DataView& data() const noexcept { return data_; }
  /// True for snapshot+delta virtual devices (core/fleet.hpp).
  bool lazy() const noexcept { return fleet_ != nullptr; }
  std::size_t param_count() const noexcept {
    return fleet_ != nullptr ? param_count_ : model_->param_count();
  }

  /// The current local model w_m: the shared snapshot when one is adopted,
  /// otherwise the private (eager) or resident (lazy) buffer. A settled
  /// lazy device materializes its at-rest delta here — call settle() when
  /// done to return the buffer to the pool.
  std::span<const float> params() const;
  /// Installs a private copy of `params` (the copy-on-write write path).
  void set_params(std::span<const float> params);
  /// Shares `snapshot` without copying; the device's version becomes the
  /// snapshot's. A lazy device also rebases on it: any resident buffer and
  /// at-rest delta are returned to the pool (the snapshot replaces them).
  void adopt(Snapshot snapshot);
  /// True while the device reads a shared snapshot (no private copy yet).
  bool shares_snapshot() const noexcept { return shared_ != nullptr; }

  /// Lazy only: true while a dense parameter buffer is checked out.
  bool resident() const noexcept { return has_resident_; }
  /// De-materializes a lazy device: encodes the resident parameters as the
  /// at-rest delta against the base snapshot (verbatim under the lossless
  /// default codec; q8/topk settle-out is lossy and bumps the version) and
  /// returns the buffer to the registry. No-op when not resident.
  void settle();
  /// Simulated storage footprint of the at-rest delta (0 when none).
  std::size_t at_rest_bytes() const noexcept {
    return delta_valid_ ? delta_->bytes() : 0;
  }
  /// Registry-eviction hook: returns every pooled resource and drops the
  /// snapshot references. The device is unusable afterwards.
  void release_fleet_state() noexcept;

  /// Version stamp of the current parameters, changed on every mutation
  /// (set_params, adopt of a different snapshot, train). The
  /// SimilarityCache keys on it: an unchanged version guarantees an
  /// unchanged selection score.
  std::uint64_t params_version() const noexcept { return params_version_; }

  /// Runs `local_steps` SGD iterations (Eq. 5) from the current parameters
  /// on minibatches of `batch_size` drawn with `rng`. When
  /// `reset_optimizer` is set, momentum/Adam state is cleared first (a
  /// fresh round starts from a freshly downloaded model). `prox_mu` > 0
  /// adds a FedProx proximal term mu/2 |w - w_start|^2 anchored at the
  /// round's starting parameters, damping client drift on Non-IID data.
  /// `clip_norm` > 0 rescales each step's gradient to at most that L2
  /// norm before the optimizer update (global-norm clipping).
  ///
  /// Lazy devices run the identical float stream through a pooled
  /// DeviceRuntime instead of a private model: pass `runtime` to reuse a
  /// checkout across many devices (the per-edge chains do); nullptr makes
  /// the device acquire and release one itself. Eager devices ignore it.
  DeviceTrainStats train(std::size_t local_steps, std::size_t batch_size,
                         double learning_rate, bool reset_optimizer,
                         parallel::Xoshiro256& rng, double prox_mu = 0.0,
                         double clip_norm = 0.0,
                         DeviceRuntime* runtime = nullptr);

  /// Oort statistical utility: d_m * sqrt(mean squared sample loss) from
  /// the most recent training round; nullopt before the first round (such
  /// devices are prioritized for exploration).
  std::optional<double> stat_utility() const noexcept { return stat_utility_; }
  /// Time step of the last participation (for staleness accounting).
  std::optional<std::size_t> last_trained_step() const noexcept {
    return last_trained_step_;
  }
  void mark_trained(std::size_t step) noexcept { last_trained_step_ = step; }
  /// Clears training history (used at global synchronization barriers in
  /// ablations; the default simulator keeps history across syncs).
  void clear_history() noexcept {
    stat_utility_.reset();
    last_trained_step_.reset();
  }

  /// The private model of an EAGER device, with any shared snapshot
  /// materialized into it first so its parameters are current. Throws
  /// std::logic_error for lazy devices (they have no private model; use
  /// params()).
  nn::Sequential& model();

 private:
  /// Copies an adopted snapshot into the private buffer and drops the
  /// share (eager layout). Content (and version) are unchanged.
  void materialize() {
    if (shared_) {
      model_->set_parameters(shared_->span());
      shared_.reset();
    }
  }
  /// Lazy: checks a resident buffer out of the registry (or reuses the
  /// current one) sized for overwrite — reset_for_overwrite skips the
  /// zero-fill the subsequent copy/decode would waste.
  std::span<float> ensure_resident_for_overwrite();
  /// Lazy: materializes the dense parameters of a settled device from its
  /// at-rest delta into a resident buffer. Mutable path behind params().
  void decode_resident() const;
  /// Lazy: retires the at-rest delta's byte accounting (the encoded block
  /// is kept for reuse by the next settle()).
  void invalidate_delta() noexcept;
  /// The I-step local SGD loop shared verbatim by the eager and lazy
  /// paths; `model`/`optimizer`/`batch_scratch` are the device's own
  /// (eager) or a pooled runtime's (lazy).
  DeviceTrainStats run_local_sgd(nn::Sequential& model,
                                 optim::Optimizer& optimizer,
                                 data::Minibatch& batch_scratch,
                                 std::size_t local_steps,
                                 std::size_t batch_size,
                                 parallel::Xoshiro256& rng, double prox_mu,
                                 double clip_norm);

  std::size_t id_;
  data::DataView data_;
  std::unique_ptr<nn::Sequential> model_;
  std::unique_ptr<optim::Optimizer> optimizer_;
  // Reused across all local SGD steps so per-step sampling is
  // allocation-free in the steady state (see data::sample_minibatch_into).
  data::Minibatch batch_scratch_;
  std::optional<double> stat_utility_;
  std::optional<std::size_t> last_trained_step_;
  Snapshot shared_;
  std::uint64_t params_version_ = 0;

  // --- Lazy (virtual) state; meaningful only when fleet_ != nullptr. ---
  DeviceRegistry* fleet_ = nullptr;
  std::size_t param_count_ = 0;
  /// Base snapshot the at-rest delta is encoded against (always set).
  Snapshot base_;
  /// At-rest divergence from base_; valid content iff delta_valid_ (the
  /// block itself is kept across invalidations for reuse).
  std::unique_ptr<transport::EncodedDelta> delta_;
  bool delta_valid_ = false;
  /// Dense parameters while checked out; mutable because params() const
  /// materializes on demand.
  mutable tensor::Tensor resident_;
  mutable bool has_resident_ = false;
  /// Resident buffer holds writes not yet encoded by settle().
  bool dirty_ = false;
  /// Persisted per-device stochastic training state, restored into the
  /// pooled runtime around each round so virtual and eager devices draw
  /// identical dropout masks and momentum trajectories.
  parallel::Xoshiro256 dropout_rng_;
  bool dropout_seeded_ = false;
  std::vector<float> opt_state_;
  bool has_opt_state_ = false;
};

class Edge {
 public:
  Edge(std::size_t id, std::size_t param_count);

  std::size_t id() const noexcept { return id_; }
  std::span<const float> params() const noexcept { return snapshot_->span(); }
  /// Publishes an immutable copy of `params` as this edge's model.
  void set_params(std::span<const float> params);
  /// Shares an already-published block (e.g. the cloud's broadcast).
  void adopt(Snapshot snapshot);
  /// The current model as a shareable snapshot (O(1)).
  const Snapshot& snapshot() const noexcept { return snapshot_; }

  /// Accumulates participating-sample weight toward d_hat_n (Eq. 7).
  void add_participation(double weight) noexcept {
    participation_weight_ += weight;
  }
  double participation_weight() const noexcept {
    return participation_weight_;
  }
  void reset_participation() noexcept { participation_weight_ = 0.0; }

 private:
  std::size_t id_;
  Snapshot snapshot_;
  double participation_weight_ = 0.0;
};

class Cloud {
 public:
  explicit Cloud(std::size_t param_count);

  std::span<const float> params() const noexcept { return snapshot_->span(); }
  /// Publishes an immutable copy of `params` as the global model.
  void set_params(std::span<const float> params);
  /// Installs an already-published block as the global model.
  void adopt(Snapshot snapshot);
  /// The global model as a shareable snapshot: the broadcast after a cloud
  /// sync hands this one block to every edge and device.
  const Snapshot& snapshot() const noexcept { return snapshot_; }

  /// Version stamp of the current global model for the SimilarityCache;
  /// changes exactly when the parameters do (a new block is installed).
  std::uint64_t params_version() const noexcept {
    return snapshot_->version();
  }

 private:
  Snapshot snapshot_;
};

}  // namespace middlefl::core
