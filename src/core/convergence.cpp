#include "core/convergence.hpp"

#include <algorithm>
#include <stdexcept>

namespace middlefl::core {
namespace {

void validate(const Theorem1Params& p) {
  if (p.beta <= 0.0 || p.mu <= 0.0 || p.big_g <= 0.0 || p.big_b < 0.0) {
    throw std::invalid_argument("Theorem1: beta, mu, G must be positive and B >= 0");
  }
  if (p.alpha <= 0.0 || p.alpha >= 1.0) {
    throw std::invalid_argument("Theorem1: alpha must be in (0, 1)");
  }
  if (p.mobility <= 0.0 || p.mobility > 1.0) {
    throw std::invalid_argument("Theorem1: P must be in (0, 1]");
  }
  if (p.local_steps == 0) {
    throw std::invalid_argument("Theorem1: I must be positive");
  }
  if (p.init_distance_sq < 0.0) {
    throw std::invalid_argument("Theorem1: initial distance must be >= 0");
  }
}

}  // namespace

double theorem1_gamma(const Theorem1Params& p) {
  validate(p);
  return std::max(8.0 * p.beta / p.mu, static_cast<double>(p.local_steps));
}

double theorem1_lr(const Theorem1Params& p, std::size_t t) {
  const double gamma = theorem1_gamma(p);
  return 2.0 / (p.mu * (gamma + static_cast<double>(t)));
}

double theorem1_mobility_term(const Theorem1Params& p) {
  validate(p);
  const double gamma = theorem1_gamma(p);
  const double i_sq = static_cast<double>(p.local_steps) *
                      static_cast<double>(p.local_steps);
  return 8.0 * p.beta * i_sq * p.big_g * p.big_g /
         (p.mu * p.mu * gamma * gamma * p.alpha * (1.0 - p.alpha) *
          p.mobility);
}

double theorem1_bound(const Theorem1Params& p) {
  validate(p);
  const double gamma = theorem1_gamma(p);
  const double optimization_term =
      p.beta / (gamma + static_cast<double>(p.horizon) + 1.0) *
      (2.0 * p.big_b / (p.mu * p.mu) +
       (gamma + 1.0) / 2.0 * p.init_distance_sq);
  return optimization_term + theorem1_mobility_term(p);
}

double theorem1_dbound_dmobility(const Theorem1Params& p) {
  // d/dP of (c / P) = -c / P^2, with c the mobility-term numerator.
  return -theorem1_mobility_term(p) / p.mobility;
}

double theorem1_big_b(const std::vector<double>& h,
                      const std::vector<double>& sigma_sq, double beta,
                      double gamma_gap) {
  if (h.size() != sigma_sq.size()) {
    throw std::invalid_argument("theorem1_big_b: size mismatch");
  }
  double b = 0.0;
  for (std::size_t m = 0; m < h.size(); ++m) {
    b += h[m] * h[m] * sigma_sq[m];
  }
  return b + 6.0 * beta * gamma_gap;
}

}  // namespace middlefl::core
