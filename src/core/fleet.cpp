#include "core/fleet.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "nn/dropout.hpp"

namespace middlefl::core {
namespace {

constexpr std::size_t kDefaultShards = 64;
constexpr std::size_t kInitialTableCapacity = 16;
/// Dense fast-path cap: sequential Simulation ids always qualify; a churn
/// test inserting huge sparse ids must not force an O(max_id) table.
constexpr std::size_t kDenseCap = std::size_t{1} << 26;

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

void DeviceRegistry::configure(const FleetConfig& config) {
  if (size_ != 0) {
    throw std::logic_error(
        "DeviceRegistry::configure: registry already holds devices");
  }
  cfg_ = config;
  const std::size_t requested =
      cfg_.shards == 0 ? kDefaultShards : cfg_.shards;
  const std::size_t shards = round_up_pow2(requested);
  shards_.clear();
  // deque grows in place: Shard holds a mutex and cannot be moved.
  for (std::size_t s = 0; s < shards; ++s) shards_.emplace_back();
  shard_mask_ = shards - 1;
  dense_.clear();
}

void DeviceRegistry::set_prototypes(const nn::Sequential& model,
                                    const optim::Optimizer& optimizer) {
  proto_model_ = model.clone();
  proto_optimizer_ = optimizer.clone_config();
  param_count_ = proto_model_->param_count();
  has_dropout_ = proto_model_->has_dropout();
  {
    std::lock_guard<std::mutex> lock(runtime_mutex_);
    runtime_pool_.clear();
    runtime_free_.clear();
  }
}

const parallel::Xoshiro256& DeviceRegistry::initial_dropout_rng() const {
  if (proto_model_ == nullptr) {
    throw std::logic_error(
        "DeviceRegistry::initial_dropout_rng: prototypes not set");
  }
  return proto_model_->dropout_rng();
}

DeviceRegistry::Entry* DeviceRegistry::probe(Shard& shard,
                                             std::size_t id) noexcept {
  if (shard.table.empty()) return nullptr;
  const std::size_t mask = shard.table.size() - 1;
  std::size_t idx = static_cast<std::size_t>(hash_id(id)) & mask;
  for (;;) {
    Entry& entry = shard.table[idx];
    if (entry.slot == Entry::kEmpty) return nullptr;
    if (entry.slot != Entry::kTombstone && entry.id == id) return &entry;
    idx = (idx + 1) & mask;
  }
}

void DeviceRegistry::rehash(Shard& shard, std::size_t capacity) {
  std::vector<Entry> old = std::move(shard.table);
  shard.table.assign(capacity, Entry{});
  shard.tombstones = 0;
  const std::size_t mask = capacity - 1;
  for (const Entry& entry : old) {
    if (entry.slot == Entry::kEmpty || entry.slot == Entry::kTombstone) {
      continue;
    }
    std::size_t idx = static_cast<std::size_t>(hash_id(entry.id)) & mask;
    while (shard.table[idx].slot != Entry::kEmpty) idx = (idx + 1) & mask;
    shard.table[idx] = entry;
  }
}

Device& DeviceRegistry::insert(Device device) {
  const std::size_t id = device.id();
  Shard& shard = shards_[shard_of(id)];
  if (probe(shard, id) != nullptr) {
    throw std::invalid_argument("DeviceRegistry::insert: duplicate device id " +
                                std::to_string(id));
  }
  // Keep occupancy (live + tombstones) under ~70% so probes stay short.
  if (shard.table.empty()) {
    rehash(shard, kInitialTableCapacity);
  } else if ((shard.occupied + shard.tombstones + 1) * 10 >=
             shard.table.size() * 7) {
    rehash(shard, shard.table.size() * 2);
  }

  std::size_t slot;
  if (!shard.free_slots.empty()) {
    slot = shard.free_slots.back();
    shard.free_slots.pop_back();
    shard.slots[slot] = std::move(device);
  } else {
    slot = shard.slots.size();
    shard.slots.push_back(std::move(device));
  }

  const std::size_t mask = shard.table.size() - 1;
  std::size_t idx = static_cast<std::size_t>(hash_id(id)) & mask;
  while (shard.table[idx].slot != Entry::kEmpty &&
         shard.table[idx].slot != Entry::kTombstone) {
    idx = (idx + 1) & mask;
  }
  if (shard.table[idx].slot == Entry::kTombstone) --shard.tombstones;
  shard.table[idx] = Entry{id, slot};
  ++shard.occupied;
  ++size_;

  Device& stored = shard.slots[slot];
  if (id < kDenseCap) {
    if (id >= dense_.size()) dense_.resize(id + 1, nullptr);
    dense_[id] = &stored;
  }
  return stored;
}

bool DeviceRegistry::erase(std::size_t id) {
  Shard& shard = shards_[shard_of(id)];
  Entry* entry = probe(shard, id);
  if (entry == nullptr) return false;
  const std::size_t slot = entry->slot;
  entry->slot = Entry::kTombstone;
  ++shard.tombstones;
  --shard.occupied;
  --size_;
  if (id < dense_.size()) dense_[id] = nullptr;

  // Return the device's pooled state, then shrink it to a zombie: the
  // deque slot cannot be destroyed individually, but a moved-from Device
  // holds no heap state worth keeping.
  shard.slots[slot].release_fleet_state();
  Device zombie = std::move(shard.slots[slot]);
  static_cast<void>(zombie);
  shard.free_slots.push_back(slot);
  return true;
}

Device* DeviceRegistry::find(std::size_t id) noexcept {
  if (id < dense_.size() && dense_[id] != nullptr) return dense_[id];
  Shard& shard = shards_[shard_of(id)];
  Entry* entry = probe(shard, id);
  return entry == nullptr ? nullptr : &shard.slots[entry->slot];
}

const Device* DeviceRegistry::find(std::size_t id) const noexcept {
  return const_cast<DeviceRegistry*>(this)->find(id);
}

Device& DeviceRegistry::at(std::size_t id) {
  Device* device = find(id);
  if (device == nullptr) {
    throw std::out_of_range("DeviceRegistry::at: no device with id " +
                            std::to_string(id));
  }
  return *device;
}

const Device& DeviceRegistry::at(std::size_t id) const {
  return const_cast<DeviceRegistry*>(this)->at(id);
}

DeviceRuntime* DeviceRegistry::acquire_runtime() {
  std::lock_guard<std::mutex> lock(runtime_mutex_);
  if (!runtime_free_.empty()) {
    DeviceRuntime* runtime = runtime_free_.back();
    runtime_free_.pop_back();
    return runtime;
  }
  if (proto_model_ == nullptr || proto_optimizer_ == nullptr) {
    throw std::logic_error(
        "DeviceRegistry::acquire_runtime: prototypes not set");
  }
  auto runtime = std::unique_ptr<DeviceRuntime>(new DeviceRuntime());
  runtime->model_ = proto_model_->clone();
  runtime->optimizer_ = proto_optimizer_->clone_config();
  runtime_pool_.push_back(std::move(runtime));
  return runtime_pool_.back().get();
}

void DeviceRegistry::release_runtime(DeviceRuntime* runtime) {
  if (runtime == nullptr) return;
  std::lock_guard<std::mutex> lock(runtime_mutex_);
  runtime_free_.push_back(runtime);
}

tensor::Tensor DeviceRegistry::acquire_resident(std::size_t id) {
  Shard& shard = shards_[shard_of(id)];
  tensor::Tensor buffer;
  {
    std::lock_guard<std::mutex> lock(shard.freelist_mutex);
    if (!shard.resident_free.empty()) {
      buffer = std::move(shard.resident_free.back());
      shard.resident_free.pop_back();
    }
  }
  materializations_.fetch_add(1, std::memory_order_relaxed);
  const auto now = resident_now_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (now > 0) {
    // Lock-free high-water mark; races only ever lower the observed peak
    // by transient amounts and the serial per-step read is exact.
    auto peak = resident_peak_.load(std::memory_order_relaxed);
    const auto now_u = static_cast<std::size_t>(now);
    while (now_u > peak && !resident_peak_.compare_exchange_weak(
                               peak, now_u, std::memory_order_relaxed)) {
    }
  }
  return buffer;
}

void DeviceRegistry::release_resident(std::size_t id, tensor::Tensor buffer) {
  resident_now_.fetch_sub(1, std::memory_order_relaxed);
  Shard& shard = shards_[shard_of(id)];
  std::lock_guard<std::mutex> lock(shard.freelist_mutex);
  shard.resident_free.push_back(std::move(buffer));
}

std::unique_ptr<transport::EncodedDelta> DeviceRegistry::acquire_delta(
    std::size_t id) {
  Shard& shard = shards_[shard_of(id)];
  {
    std::lock_guard<std::mutex> lock(shard.freelist_mutex);
    if (!shard.delta_free.empty()) {
      auto delta = std::move(shard.delta_free.back());
      shard.delta_free.pop_back();
      delta->clear();
      return delta;
    }
  }
  return std::make_unique<transport::EncodedDelta>();
}

void DeviceRegistry::release_delta(
    std::size_t id, std::unique_ptr<transport::EncodedDelta> delta) {
  if (delta == nullptr) return;
  Shard& shard = shards_[shard_of(id)];
  std::lock_guard<std::mutex> lock(shard.freelist_mutex);
  shard.delta_free.push_back(std::move(delta));
}

}  // namespace middlefl::core
