// Model evaluation and run-history bookkeeping.
#pragma once

#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "nn/sequential.hpp"
#include "parallel/rng.hpp"
#include "parallel/thread_pool.hpp"

namespace middlefl::core {

struct EvalResult {
  double accuracy = 0.0;
  double loss = 0.0;
  std::size_t samples = 0;
};

/// Evaluates flat parameter vectors on a test set using one shared model
/// instance (evaluation never mutates parameters of the entities under
/// test). Not thread-safe; benches hold one Evaluator per thread if needed.
/// With set_pool(), evaluate() shards the test batches across the pool —
/// per-batch statistics are reduced in batch order, so the result stays
/// bitwise identical to the serial sweep.
class Evaluator {
 public:
  /// `model` provides the architecture; its current parameters are
  /// irrelevant (overwritten per call). The evaluator takes ownership.
  Evaluator(std::unique_ptr<nn::Sequential> model, data::DataView test_data,
            std::size_t batch_size = 256);

  /// Shards evaluate() batches across `pool` (nullptr restores the serial
  /// sweep). Worker models are lazily cloned from the architecture and
  /// recycled across calls.
  void set_pool(parallel::ThreadPool* pool) noexcept { pool_ = pool; }

  /// Attaches a span recorder: each evaluation batch (sharded path) or
  /// whole-view sweep (serial path) becomes an "eval" span. nullptr
  /// detaches. Tracing never changes the batch order or the reduction.
  void set_trace(obs::TraceRecorder* trace) noexcept { trace_ = trace; }

  /// Overall accuracy/loss of `params`. When `max_samples` > 0 and smaller
  /// than the test set, evaluates on a fixed deterministic subsample (same
  /// subset for every call, so curves are comparable across steps).
  EvalResult evaluate(std::span<const float> params,
                      std::size_t max_samples = 0);

  /// Per-class accuracy over the full test set; entries for classes with no
  /// test samples are NaN.
  std::vector<double> per_class_accuracy(std::span<const float> params);

  /// Accuracy restricted to the given label set (e.g. "major classes").
  EvalResult evaluate_classes(std::span<const float> params,
                              std::span<const std::int32_t> classes);

  /// Row-normalized confusion matrix over the full test set:
  /// result[true][predicted] = fraction of class-`true` samples predicted
  /// as `predicted`. Rows of absent classes are all zero.
  std::vector<std::vector<double>> confusion_matrix(
      std::span<const float> params);

  const data::DataView& test_data() const noexcept { return test_; }

 private:
  EvalResult evaluate_view(std::span<const float> params,
                           const data::DataView& view);
  EvalResult evaluate_view_sharded(std::span<const float> params,
                                   const data::DataView& view,
                                   std::size_t num_batches);

  // Worker-model recycling for the sharded path: a worker pops a spare
  // clone (or clones the architecture on a dry stack) and pushes it back
  // when its batch is done, so steady-state evaluation allocates nothing.
  std::unique_ptr<nn::Sequential> acquire_worker_model();
  void release_worker_model(std::unique_ptr<nn::Sequential> model);

  std::unique_ptr<nn::Sequential> model_;
  data::DataView test_;
  data::DataView subsample_;  // lazily built deterministic subsample
  std::size_t subsample_size_ = 0;
  std::size_t batch_size_;
  parallel::ThreadPool* pool_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  std::mutex spares_mutex_;
  std::vector<std::unique_ptr<nn::Sequential>> spares_;
};

/// One evaluation point along a run.
struct EvalPoint {
  std::size_t step = 0;
  double accuracy = 0.0;
  double loss = 0.0;
  /// Optional extras, empty unless tracking was enabled.
  std::vector<double> per_class_accuracy;
  std::vector<double> edge_accuracy;
};

/// Complete record of one simulation run.
struct RunHistory {
  std::string algorithm;
  std::vector<EvalPoint> points;

  /// First evaluation step whose accuracy reaches `target`; nullopt if the
  /// run never got there.
  std::optional<std::size_t> time_to_accuracy(double target) const;

  /// Final (last-point) accuracy; NaN for an empty history.
  double final_accuracy() const;

  /// Best accuracy seen; NaN for an empty history.
  double best_accuracy() const;

  /// Accuracy series (for smoothing / plotting).
  std::vector<double> accuracy_series() const;
};

/// Writes a RunHistory as CSV (columns: algorithm, step, accuracy, loss)
/// and reads it back. Round-trips through util::CsvWriter's format —
/// including algorithm names containing commas or quotes, which the writer
/// escapes per RFC 4180 and the loader unescapes (util::csv_split_row).
/// Loading validates the header. Extras (per-class / edge accuracy) are
/// not persisted — persist the full CSVs from the benches for those.
void save_history_csv(const RunHistory& history, const std::string& path);
RunHistory load_history_csv(const std::string& path);

/// Mean total-variation distance between each edge's class mixture and the
/// global class mixture, in [0, 1]: 0 = every edge sees the global
/// distribution (IID across edges), 1 = perfectly disjoint class support.
/// Edges with no samples are skipped. This is the quantity device mobility
/// perturbs over time — uniform-teleport mobility drives it to ~0 within a
/// few steps while home-biased mobility keeps it high (DESIGN.md §2).
double mean_edge_skew(
    const std::vector<std::vector<std::size_t>>& edge_class_histograms);

/// Speedup of `ours` over `baseline` in time-to-accuracy: baseline_steps /
/// our_steps. Infinity when only the baseline missed the target; nullopt
/// when ours missed it.
std::optional<double> speedup(const RunHistory& ours,
                              const RunHistory& baseline, double target);

}  // namespace middlefl::core
