// Lossy compression of model UPDATES for the device->edge uplink.
//
// The simulator models compression as reconstruct(compress(delta)): the
// edge aggregates the lossy reconstruction, and the byte counters record
// what the radio would have carried. Deltas (w_new - w_ref against the
// downloaded edge model) compress far better than raw weights, which is
// why the API takes the reference explicitly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace middlefl::core {

enum class CompressionKind {
  kNone,   // full float32 payload
  kTopK,   // keep the k = fraction*n largest-magnitude entries
  kQuant8, // uniform symmetric 8-bit quantization
};

struct CompressionConfig {
  CompressionKind kind = CompressionKind::kNone;
  /// Fraction of coordinates kept by kTopK, in (0, 1].
  double top_k_fraction = 0.1;
};

struct CompressedUpdate {
  /// Lossy reconstruction of the update (same length as the input).
  std::vector<float> reconstruction;
  /// Simulated wire size of the compressed payload.
  std::size_t bytes = 0;
};

/// Compresses and immediately reconstructs `update`; see CompressedUpdate.
/// Wire-size model: kNone = 4n; kTopK = 8k (float value + uint32 index per
/// kept coordinate, k >= 1); kQuant8 = n + 4 (one byte per coordinate plus
/// the scale).
CompressedUpdate compress_update(std::span<const float> update,
                                 const CompressionConfig& config);

/// Convenience: applies update compression to a full model given its
/// reference: returns ref + reconstruct(compress(model - ref)).
CompressedUpdate compress_model(std::span<const float> model,
                                std::span<const float> reference,
                                const CompressionConfig& config);

}  // namespace middlefl::core
