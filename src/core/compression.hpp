// Compatibility alias: compression moved to the transport layer (it is a
// link property, not a training-loop concern). Existing code that used
// core::CompressionConfig and friends keeps compiling; new code should
// include transport/compression.hpp directly.
#pragma once

#include "transport/compression.hpp"

namespace middlefl::core {

using transport::CompressedUpdate;
using transport::CompressionConfig;
using transport::CompressionKind;
using transport::compress_model;
using transport::compress_update;

}  // namespace middlefl::core
