#include "core/selection.hpp"

#include <algorithm>
#include <numeric>

#include "core/similarity.hpp"

namespace middlefl::core {
namespace {

/// Random permutation of [0, n) used both for sampling and tie-breaking.
std::vector<std::size_t> shuffled_positions(std::size_t n,
                                            parallel::Xoshiro256& rng) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::shuffle(order.begin(), order.end(), rng);
  return order;
}

/// Ranks candidates by descending score after a random shuffle (so equal
/// scores are broken uniformly at random) and returns the top-k ids.
std::vector<std::size_t> top_k_by_score(
    std::span<const Candidate> candidates, const std::vector<double>& scores,
    std::size_t k, parallel::Xoshiro256& rng) {
  auto order = shuffled_positions(candidates.size(), rng);
  std::stable_sort(order.begin(), order.end(),
                   [&scores](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  const std::size_t take = std::min(k, candidates.size());
  std::vector<std::size_t> ids;
  ids.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    ids.push_back(candidates[order[i]].device_id);
  }
  return ids;
}

}  // namespace

std::vector<std::size_t> RandomSelection::select(
    std::span<const Candidate> candidates,
    std::span<const float> /*cloud_params*/, std::size_t k,
    parallel::Xoshiro256& rng) const {
  auto order = shuffled_positions(candidates.size(), rng);
  const std::size_t take = std::min(k, candidates.size());
  std::vector<std::size_t> ids;
  ids.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    ids.push_back(candidates[order[i]].device_id);
  }
  return ids;
}

std::vector<std::size_t> StatUtilitySelection::select(
    std::span<const Candidate> candidates,
    std::span<const float> /*cloud_params*/, std::size_t k,
    parallel::Xoshiro256& rng) const {
  // Never-trained devices get a score above any finite utility so they are
  // explored first (Oort's exploration of fresh clients).
  double max_utility = 0.0;
  for (const auto& c : candidates) {
    if (c.stat_utility) max_utility = std::max(max_utility, *c.stat_utility);
  }
  std::vector<double> scores(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = candidates[i].stat_utility ? *candidates[i].stat_utility
                                           : max_utility + 1.0;
  }
  return top_k_by_score(candidates, scores, k, rng);
}

std::vector<std::size_t> SimilaritySelection::select(
    std::span<const Candidate> candidates,
    std::span<const float> cloud_params, std::size_t k,
    parallel::Xoshiro256& rng) const {
  std::vector<double> scores(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double u = selection_utility(cloud_params,
                                       candidates[i].local_params);
    scores[i] = invert_ ? u : -u;  // Eq. 12: TOPK of -U
  }
  return top_k_by_score(candidates, scores, k, rng);
}

std::vector<std::size_t> HybridSelection::select(
    std::span<const Candidate> candidates,
    std::span<const float> cloud_params, std::size_t k,
    parallel::Xoshiro256& rng) const {
  double max_utility = 0.0;
  for (const auto& c : candidates) {
    if (c.stat_utility) max_utility = std::max(max_utility, *c.stat_utility);
  }
  std::vector<double> scores(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    if (!c.stat_utility) {
      // Unexplored devices beat every explored one.
      scores[i] = (max_utility + 1.0) * 2.0;
      continue;
    }
    const double dissimilarity =
        1.0 - selection_utility(cloud_params, c.local_params);
    scores[i] = *c.stat_utility * dissimilarity;
  }
  return top_k_by_score(candidates, scores, k, rng);
}

}  // namespace middlefl::core
