#include "core/selection.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/similarity.hpp"
#include "core/similarity_cache.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace middlefl::core {
namespace {

/// Random permutation of [0, n) used both for sampling and tie-breaking.
/// The std::shuffle draw pattern is part of the determinism contract (it
/// feeds the pipeline golden fingerprints), so both top-k paths run it
/// verbatim and only differ in how they rank the result.
std::vector<std::size_t> shuffled_positions(std::size_t n,
                                            parallel::Xoshiro256& rng) {
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::shuffle(order.begin(), order.end(), rng);
  return order;
}

/// Work threshold (candidates x parameters) below which parallel scoring
/// costs more in dispatch than it saves.
constexpr std::size_t kParallelScoreWork = std::size_t{1} << 17;

}  // namespace

std::vector<std::size_t> top_k_by_score_reference(
    std::span<const Candidate> candidates, const std::vector<double>& scores,
    std::size_t k, parallel::Xoshiro256& rng) {
  auto order = shuffled_positions(candidates.size(), rng);
  std::stable_sort(order.begin(), order.end(),
                   [&scores](std::size_t a, std::size_t b) {
                     return scores[a] > scores[b];
                   });
  const std::size_t take = std::min(k, candidates.size());
  std::vector<std::size_t> ids;
  ids.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    ids.push_back(candidates[order[i]].device_id);
  }
  return ids;
}

std::vector<std::size_t> top_k_by_score(std::span<const Candidate> candidates,
                                        const std::vector<double>& scores,
                                        std::size_t k,
                                        parallel::Xoshiro256& rng) {
  const std::size_t n = candidates.size();
  const auto order = shuffled_positions(n, rng);
  const std::size_t take = std::min(k, n);
  // Rank-equivalence: stable_sort of `order` by score keeps equal-score
  // positions in shuffle order, i.e. it orders by the composite key
  // (score desc, shuffle-rank asc) — a strict total order (ranks are
  // distinct). Selecting the `take` smallest composite keys with
  // nth_element + sort therefore yields the identical prefix without
  // sorting the n - k tail.
  std::vector<std::size_t> ranks(n);
  std::iota(ranks.begin(), ranks.end(), std::size_t{0});
  const auto by_key = [&](std::size_t ra, std::size_t rb) {
    const double sa = scores[order[ra]];
    const double sb = scores[order[rb]];
    if (sa != sb) return sa > sb;
    return ra < rb;
  };
  if (take < n) {
    std::nth_element(ranks.begin(), ranks.begin() + static_cast<std::ptrdiff_t>(take),
                     ranks.end(), by_key);
    ranks.resize(take);
  }
  std::sort(ranks.begin(), ranks.end(), by_key);
  std::vector<std::size_t> ids;
  ids.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    ids.push_back(candidates[order[ranks[i]]].device_id);
  }
  return ids;
}

std::vector<double> score_selection_utilities(
    std::span<const Candidate> candidates, std::span<const float> cloud_params,
    const SelectionContext& context) {
  std::vector<double> scores(candidates.size(), 0.0);
  // Cache pass: collect the indices whose (device, cloud) version pair
  // missed; only those pay the fused sweep over the parameter vector.
  std::vector<std::size_t> misses;
  if (context.cache != nullptr) {
    misses.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const Candidate& c = candidates[i];
      if (const auto cached = context.cache->lookup(
              c.device_id, c.params_version, context.cloud_version)) {
        scores[i] = *cached;
      } else {
        misses.push_back(i);
      }
    }
  } else {
    misses.resize(candidates.size());
    std::iota(misses.begin(), misses.end(), std::size_t{0});
  }

  const auto score_one = [&](std::size_t mi) {
    const std::size_t i = misses[mi];
    scores[i] = selection_utility(cloud_params, candidates[i].local_params);
  };
  const std::size_t work = misses.size() * cloud_params.size();
  if (context.pool != nullptr && context.pool->size() > 1 &&
      misses.size() > 1 && work >= kParallelScoreWork) {
    // Each miss writes only its own slot; values are identical to the
    // serial path, so parallel scoring cannot perturb selection.
    parallel::parallel_for(*context.pool, 0, misses.size(), score_one);
  } else {
    for (std::size_t mi = 0; mi < misses.size(); ++mi) score_one(mi);
  }

  if (context.cache != nullptr) {
    for (const std::size_t i : misses) {
      const Candidate& c = candidates[i];
      context.cache->store(c.device_id, c.params_version,
                           context.cloud_version, scores[i]);
    }
  }
  return scores;
}

std::vector<std::size_t> SelectionStrategy::select_ids(
    std::span<const std::size_t> /*ids*/, std::size_t /*k*/,
    parallel::Xoshiro256& /*rng*/) const {
  throw std::logic_error("SelectionStrategy::select_ids: '" + name() +
                         "' reads candidate metadata; call select()");
}

std::vector<std::size_t> RandomSelection::select(
    std::span<const Candidate> candidates,
    std::span<const float> /*cloud_params*/, std::size_t k,
    parallel::Xoshiro256& rng, const SelectionContext& /*context*/) const {
  auto order = shuffled_positions(candidates.size(), rng);
  const std::size_t take = std::min(k, candidates.size());
  std::vector<std::size_t> ids;
  ids.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    ids.push_back(candidates[order[i]].device_id);
  }
  return ids;
}

std::vector<std::size_t> RandomSelection::select_ids(
    std::span<const std::size_t> ids, std::size_t k,
    parallel::Xoshiro256& rng) const {
  // Same draws and same result as select() over candidates built from
  // `ids` in order: the shuffle depends only on the count, and
  // candidates[i].device_id == ids[i].
  auto order = shuffled_positions(ids.size(), rng);
  const std::size_t take = std::min(k, ids.size());
  std::vector<std::size_t> picked;
  picked.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    picked.push_back(ids[order[i]]);
  }
  return picked;
}

std::vector<std::size_t> StatUtilitySelection::select(
    std::span<const Candidate> candidates,
    std::span<const float> /*cloud_params*/, std::size_t k,
    parallel::Xoshiro256& rng, const SelectionContext& /*context*/) const {
  // Never-trained devices get a score above any finite utility so they are
  // explored first (Oort's exploration of fresh clients).
  double max_utility = 0.0;
  for (const auto& c : candidates) {
    if (c.stat_utility) max_utility = std::max(max_utility, *c.stat_utility);
  }
  std::vector<double> scores(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = candidates[i].stat_utility ? *candidates[i].stat_utility
                                           : max_utility + 1.0;
  }
  return top_k_by_score(candidates, scores, k, rng);
}

std::vector<std::size_t> SimilaritySelection::select(
    std::span<const Candidate> candidates,
    std::span<const float> cloud_params, std::size_t k,
    parallel::Xoshiro256& rng, const SelectionContext& context) const {
  std::vector<double> scores =
      score_selection_utilities(candidates, cloud_params, context);
  for (double& score : scores) {
    score = invert_ ? score : -score;  // Eq. 12: TOPK of -U
  }
  return top_k_by_score(candidates, scores, k, rng);
}

std::vector<std::size_t> HybridSelection::select(
    std::span<const Candidate> candidates,
    std::span<const float> cloud_params, std::size_t k,
    parallel::Xoshiro256& rng, const SelectionContext& context) const {
  double max_utility = 0.0;
  for (const auto& c : candidates) {
    if (c.stat_utility) max_utility = std::max(max_utility, *c.stat_utility);
  }
  const std::vector<double> utilities =
      score_selection_utilities(candidates, cloud_params, context);
  std::vector<double> scores(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    if (!c.stat_utility) {
      // Unexplored devices beat every explored one.
      scores[i] = (max_utility + 1.0) * 2.0;
      continue;
    }
    scores[i] = *c.stat_utility * (1.0 - utilities[i]);
  }
  return top_k_by_score(candidates, scores, k, rng);
}

}  // namespace middlefl::core
