#include "core/aggregation.hpp"

#include <stdexcept>

namespace middlefl::core {

void weighted_average(std::span<const WeightedModel> models,
                      std::span<float> out) {
  if (models.empty()) {
    throw std::invalid_argument("weighted_average: no models");
  }
  double total = 0.0;
  for (const auto& m : models) {
    if (m.params.size() != out.size()) {
      throw std::invalid_argument("weighted_average: parameter size mismatch");
    }
    if (m.weight < 0.0) {
      throw std::invalid_argument("weighted_average: negative weight");
    }
    total += m.weight;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("weighted_average: all weights zero");
  }

  std::vector<double> acc(out.size(), 0.0);
  for (const auto& m : models) {
    const double w = m.weight / total;
    if (w == 0.0) continue;
    for (std::size_t i = 0; i < out.size(); ++i) {
      acc[i] += w * static_cast<double>(m.params[i]);
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<float>(acc[i]);
  }
}

std::vector<float> weighted_average(std::span<const WeightedModel> models) {
  if (models.empty()) {
    throw std::invalid_argument("weighted_average: no models");
  }
  std::vector<float> out(models.front().params.size());
  weighted_average(models, out);
  return out;
}

}  // namespace middlefl::core
