#include "core/aggregation.hpp"

#include <algorithm>
#include <stdexcept>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/workspace.hpp"

namespace middlefl::core {
namespace {

/// Elements per parallel block. Per-element sums are independent and each
/// runs in model order, so the block size only affects scheduling, never
/// the result.
constexpr std::size_t kAverageBlock = std::size_t{1} << 13;

/// Averages elements [lo, hi) into `out` using `acc` as the double
/// accumulator for that range. Weights are pre-normalized.
void average_range(std::span<const WeightedModel> models,
                   std::span<const double> norm_weights, std::span<float> out,
                   std::span<double> acc, std::size_t lo, std::size_t hi) {
  std::fill(acc.begin() + lo, acc.begin() + hi, 0.0);
  for (std::size_t k = 0; k < models.size(); ++k) {
    const double w = norm_weights[k];
    if (w == 0.0) continue;
    const std::span<const float> params = models[k].params;
    for (std::size_t i = lo; i < hi; ++i) {
      acc[i] += w * static_cast<double>(params[i]);
    }
  }
  for (std::size_t i = lo; i < hi; ++i) {
    out[i] = static_cast<float>(acc[i]);
  }
}

}  // namespace

void weighted_average(std::span<const WeightedModel> models,
                      std::span<float> out, parallel::ThreadPool* pool) {
  if (models.empty()) {
    throw std::invalid_argument("weighted_average: no models");
  }
  double total = 0.0;
  for (const auto& m : models) {
    if (m.params.size() != out.size()) {
      throw std::invalid_argument("weighted_average: parameter size mismatch");
    }
    if (m.weight < 0.0) {
      throw std::invalid_argument("weighted_average: negative weight");
    }
    total += m.weight;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("weighted_average: all weights zero");
  }

  auto& ws = tensor::Workspace::tls();
  // Normalized weights ride in the tail of the accumulator slot so the
  // whole call stays allocation-free after warm-up.
  std::span<double> scratch =
      ws.doubles(tensor::WsDoubleSlot::kAccumulate, out.size() + models.size());
  std::span<double> acc = scratch.first(out.size());
  std::span<double> norm_weights = scratch.last(models.size());
  for (std::size_t k = 0; k < models.size(); ++k) {
    norm_weights[k] = models[k].weight / total;
  }

  const std::size_t n = out.size();
  if (pool == nullptr || pool->size() <= 1 || n <= kAverageBlock ||
      parallel::ThreadPool::in_worker()) {
    average_range(models, norm_weights, out, acc, 0, n);
    return;
  }
  const std::size_t num_blocks = (n + kAverageBlock - 1) / kAverageBlock;
  parallel::parallel_for(*pool, 0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * kAverageBlock;
    const std::size_t hi = std::min(n, lo + kAverageBlock);
    average_range(models, norm_weights, out, acc, lo, hi);
  });
}

std::vector<float> weighted_average(std::span<const WeightedModel> models) {
  if (models.empty()) {
    throw std::invalid_argument("weighted_average: no models");
  }
  std::vector<float> out(models.front().params.size());
  weighted_average(models, out);
  return out;
}

}  // namespace middlefl::core
