#include "core/aggregation.hpp"

#include <algorithm>
#include <stdexcept>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/workspace.hpp"

namespace middlefl::core {

void weighted_average(std::span<const WeightedModel> models,
                      std::span<float> out, parallel::ThreadPool* pool) {
  auto& ws = tensor::Workspace::tls();
  // Normalized weights ride in the tail of the accumulator slot so the
  // whole call stays allocation-free after warm-up.
  std::span<double> scratch = ws.doubles(tensor::WsDoubleSlot::kAccumulate,
                                         out.size() + models.size());
  std::span<double> acc = scratch.first(out.size());
  std::span<double> norm_weights = scratch.last(models.size());
  comm::normalize_weights(models, out.size(), norm_weights,
                          "weighted_average");

  const std::size_t n = out.size();
  if (pool == nullptr || pool->size() <= 1 || n <= comm::kReduceBlock ||
      parallel::ThreadPool::in_worker()) {
    comm::accumulate_range(models, norm_weights, out, acc, 0, n);
    return;
  }
  const std::size_t num_blocks =
      (n + comm::kReduceBlock - 1) / comm::kReduceBlock;
  parallel::parallel_for(*pool, 0, num_blocks, [&](std::size_t b) {
    const std::size_t lo = b * comm::kReduceBlock;
    const std::size_t hi = std::min(n, lo + comm::kReduceBlock);
    comm::accumulate_range(models, norm_weights, out, acc, lo, hi);
  });
}

std::vector<float> weighted_average(std::span<const WeightedModel> models) {
  if (models.empty()) {
    throw std::invalid_argument("weighted_average: no models");
  }
  std::vector<float> out(models.front().params.size());
  weighted_average(models, out);
  return out;
}

}  // namespace middlefl::core
