#include "nn/conv2d.hpp"

#include <cstring>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "tensor/blas.hpp"
#include "tensor/workspace.hpp"

namespace middlefl::nn {

Conv2d::Conv2d(Conv2dConfig config) : cfg_(config) {
  if (cfg_.in_channels == 0 || cfg_.out_channels == 0 || cfg_.kernel == 0 ||
      cfg_.stride == 0) {
    throw std::invalid_argument("Conv2d: channels, kernel and stride must be positive");
  }
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(cfg_.in_channels) + "->" +
         std::to_string(cfg_.out_channels) + ", k=" +
         std::to_string(cfg_.kernel) + ", s=" + std::to_string(cfg_.stride) +
         ", p=" + std::to_string(cfg_.padding) + ")";
}

Shape Conv2d::build(const Shape& input_shape) {
  if (input_shape.rank() != 3 || input_shape.dim(0) != cfg_.in_channels) {
    throw std::invalid_argument("Conv2d: expected input [C=" +
                                std::to_string(cfg_.in_channels) +
                                ", H, W], got " + input_shape.to_string());
  }
  in_h_ = input_shape.dim(1);
  in_w_ = input_shape.dim(2);
  const std::size_t padded_h = in_h_ + 2 * cfg_.padding;
  const std::size_t padded_w = in_w_ + 2 * cfg_.padding;
  if (padded_h < cfg_.kernel || padded_w < cfg_.kernel) {
    throw std::invalid_argument("Conv2d: kernel larger than padded input");
  }
  out_h_ = (padded_h - cfg_.kernel) / cfg_.stride + 1;
  out_w_ = (padded_w - cfg_.kernel) / cfg_.stride + 1;
  col_rows_ = cfg_.in_channels * cfg_.kernel * cfg_.kernel;
  col_cols_ = out_h_ * out_w_;
  return Shape{cfg_.out_channels, out_h_, out_w_};
}

std::size_t Conv2d::param_count() const {
  return cfg_.out_channels * cfg_.in_channels * cfg_.kernel * cfg_.kernel +
         cfg_.out_channels;
}

void Conv2d::bind(std::span<float> params, std::span<float> grads) {
  if (params.size() != param_count() || grads.size() != param_count()) {
    throw std::invalid_argument("Conv2d::bind: slice size mismatch");
  }
  const std::size_t w_count = param_count() - cfg_.out_channels;
  weight_ = params.subspan(0, w_count);
  bias_ = params.subspan(w_count, cfg_.out_channels);
  grad_weight_ = grads.subspan(0, w_count);
  grad_bias_ = grads.subspan(w_count, cfg_.out_channels);
}

void Conv2d::init_params(parallel::Xoshiro256& rng) {
  kaiming_normal(weight_, col_rows_, rng);
  zeros(bias_);
}

void Conv2d::im2col(const float* sample, float* col) const noexcept {
  // col[(c*k*k + ky*k + kx), (oy*out_w + ox)] = padded_input[c, iy, ix]
  const auto pad = static_cast<std::ptrdiff_t>(cfg_.padding);
  for (std::size_t c = 0; c < cfg_.in_channels; ++c) {
    const float* channel = sample + c * in_h_ * in_w_;
    for (std::size_t ky = 0; ky < cfg_.kernel; ++ky) {
      for (std::size_t kx = 0; kx < cfg_.kernel; ++kx) {
        float* row =
            col + ((c * cfg_.kernel + ky) * cfg_.kernel + kx) * col_cols_;
        for (std::size_t oy = 0; oy < out_h_; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * cfg_.stride + ky) - pad;
          const bool row_in =
              iy >= 0 && iy < static_cast<std::ptrdiff_t>(in_h_);
          for (std::size_t ox = 0; ox < out_w_; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * cfg_.stride + kx) - pad;
            const bool in_bounds =
                row_in && ix >= 0 && ix < static_cast<std::ptrdiff_t>(in_w_);
            row[oy * out_w_ + ox] =
                in_bounds ? channel[static_cast<std::size_t>(iy) * in_w_ +
                                    static_cast<std::size_t>(ix)]
                          : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* col, float* sample_grad) const noexcept {
  const auto pad = static_cast<std::ptrdiff_t>(cfg_.padding);
  for (std::size_t c = 0; c < cfg_.in_channels; ++c) {
    float* channel = sample_grad + c * in_h_ * in_w_;
    for (std::size_t ky = 0; ky < cfg_.kernel; ++ky) {
      for (std::size_t kx = 0; kx < cfg_.kernel; ++kx) {
        const float* row =
            col + ((c * cfg_.kernel + ky) * cfg_.kernel + kx) * col_cols_;
        for (std::size_t oy = 0; oy < out_h_; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * cfg_.stride + ky) - pad;
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h_)) continue;
          for (std::size_t ox = 0; ox < out_w_; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * cfg_.stride + kx) - pad;
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w_)) continue;
            channel[static_cast<std::size_t>(iy) * in_w_ +
                    static_cast<std::size_t>(ix)] += row[oy * out_w_ + ox];
          }
        }
      }
    }
  }
}

void Conv2d::forward(const Tensor& input, Tensor& output, bool training) {
  forward_impl(input, output, training, nullptr);
}

void Conv2d::forward_fused(const Tensor& input, Tensor& output, bool training,
                           ReLU& relu) {
  forward_impl(input, output, training, &relu);
}

void Conv2d::forward_impl(const Tensor& input, Tensor& output, bool training,
                          ReLU* relu) {
  const std::size_t batch = input.dim(0);
  const std::size_t sample_size = cfg_.in_channels * in_h_ * in_w_;
  if (input.numel() != batch * sample_size) {
    throw std::invalid_argument("Conv2d::forward: bad input " +
                                input.shape().to_string());
  }
  const std::size_t out_sample_size = cfg_.out_channels * col_cols_;
  output.reset_for_overwrite({batch, cfg_.out_channels, out_h_, out_w_});
  std::uint8_t* mask = relu != nullptr && training
                           ? relu->fused_mask(batch * out_sample_size)
                           : nullptr;

  const std::size_t col_size = col_rows_ * col_cols_;
  // Inference reuses a single panel; training caches every sample's panel
  // for the backward weight GEMM.
  if (training) {
    col_cache_.resize(batch * col_size);
    cached_batch_ = batch;
  } else if (col_cache_.size() < col_size) {
    col_cache_.resize(col_size);
  }

  for (std::size_t b = 0; b < batch; ++b) {
    float* col = col_cache_.data() + (training ? b * col_size : 0);
    im2col(input.data().data() + b * sample_size, col);
    float* out_sample = output.data().data() + b * out_sample_size;
    // out[oc, pos] = W[oc, :] . col[:, pos] + bias[oc]; the per-channel
    // bias (and the fused ReLU, when present) ride the GEMM's final sweep
    // instead of re-traversing the output planes.
    tensor::GemmEpilogue epi;
    epi.row_bias = bias_.data();
    epi.relu = relu != nullptr;
    if (mask != nullptr) epi.relu_mask = mask + b * out_sample_size;
    tensor::gemm(tensor::Trans::kNo, tensor::Trans::kNo, cfg_.out_channels,
                 col_cols_, col_rows_, 1.0f, weight_,
                 std::span<const float>(col, col_size), 0.0f,
                 std::span<float>(out_sample, out_sample_size), nullptr, &epi);
  }
}

void Conv2d::backward(const Tensor& input, const Tensor& grad_output,
                      Tensor& grad_input) {
  const std::size_t batch = input.dim(0);
  if (cached_batch_ != batch) {
    throw std::logic_error(
        "Conv2d::backward: no cached forward state for this batch (forward "
        "must run with training=true)");
  }
  const std::size_t sample_size = cfg_.in_channels * in_h_ * in_w_;
  const std::size_t col_size = col_rows_ * col_cols_;
  grad_input.reset(input.shape());

  // d(col) panel from the workspace: backward runs once per sample per
  // batch, and gemm only borrows the pack slots, so kConvColGrad is free.
  std::span<float> dcol = tensor::Workspace::tls().floats(
      tensor::WsSlot::kConvColGrad, col_size);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* col = col_cache_.data() + b * col_size;
    const float* dy =
        grad_output.data().data() + b * cfg_.out_channels * col_cols_;
    const std::span<const float> dy_span(dy, cfg_.out_channels * col_cols_);
    // dW[oc, r] += dY[oc, :] . col[r, :]^T
    tensor::gemm(tensor::Trans::kNo, tensor::Trans::kYes, cfg_.out_channels,
                 col_rows_, col_cols_, 1.0f, dy_span,
                 std::span<const float>(col, col_size), 1.0f, grad_weight_);
    // db[oc] += sum_pos dY[oc, pos]
    for (std::size_t oc = 0; oc < cfg_.out_channels; ++oc) {
      double acc = 0.0;
      const float* plane = dy + oc * col_cols_;
      for (std::size_t p = 0; p < col_cols_; ++p) acc += plane[p];
      grad_bias_[oc] += static_cast<float>(acc);
    }
    // dcol[r, pos] = W[:, r]^T dY[:, pos]
    tensor::gemm(tensor::Trans::kYes, tensor::Trans::kNo, col_rows_, col_cols_,
                 cfg_.out_channels, 1.0f, weight_, dy_span, 0.0f,
                 std::span<float>(dcol.data(), col_size));
    col2im(dcol.data(), grad_input.data().data() + b * sample_size);
  }
}

std::unique_ptr<Layer> Conv2d::clone() const {
  return std::make_unique<Conv2d>(cfg_);
}

}  // namespace middlefl::nn
