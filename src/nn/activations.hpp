// Pointwise activation layers.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.hpp"

namespace middlefl::nn {

class ReLU final : public Layer {
 public:
  std::string name() const override { return "ReLU"; }
  Shape build(const Shape& input_shape) override { return input_shape; }
  void forward(const Tensor& input, Tensor& output, bool training) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>();
  }

  /// Fused-forward hook: when Sequential fuses this ReLU into the
  /// preceding Linear/Conv2d GEMM epilogue, the producing layer writes the
  /// activation mask straight into this buffer (1 where the pre-activation
  /// was positive) instead of ReLU::forward running at all. backward()
  /// then works exactly as if forward had filled the mask itself.
  std::uint8_t* fused_mask(std::size_t numel) {
    if (mask_.size() < numel) mask_.resize(numel);
    cached_numel_ = numel;
    return mask_.data();
  }

 private:
  // One byte per element of the last training batch: was the input
  // positive. Bytes, not vector<bool> — bit addressing serializes the
  // forward/backward loops that otherwise vectorize.
  std::vector<std::uint8_t> mask_;
  std::size_t cached_numel_ = 0;
};

class Tanh final : public Layer {
 public:
  std::string name() const override { return "Tanh"; }
  Shape build(const Shape& input_shape) override { return input_shape; }
  void forward(const Tensor& input, Tensor& output, bool training) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Tanh>();
  }

 private:
  // tanh(x) of the last training batch; dtanh = 1 - tanh^2. Grows to a
  // high-water mark like ReLU's mask (no per-forward reallocation).
  std::vector<float> output_;
  std::size_t cached_numel_ = 0;
};

}  // namespace middlefl::nn
