// Model checkpointing.
//
// Format: a one-line text header followed by raw little-endian float32
// parameters —
//
//   middlefl-model v1 params=<N> arch=<summary-hash>\n
//   <N * 4 bytes>
//
// The header stores a hash of the architecture summary so loading into a
// mismatched model fails loudly instead of silently scrambling weights.
// Checkpoints are portable across runs of the same build on little-endian
// hosts (every platform this project targets).
#pragma once

#include <iosfwd>
#include <string>

#include "nn/sequential.hpp"

namespace middlefl::nn {

/// Writes the model's parameters with an architecture fingerprint.
void save_model(const Sequential& model, std::ostream& out);
void save_model_file(const Sequential& model, const std::string& path);

/// Restores parameters into an already-built model of the SAME
/// architecture. Throws std::runtime_error on malformed input, parameter
/// count mismatch, or architecture fingerprint mismatch.
void load_model(Sequential& model, std::istream& in);
void load_model_file(Sequential& model, const std::string& path);

/// FNV-1a hash of the architecture summary (exposed for tests).
std::uint64_t architecture_fingerprint(const Sequential& model);

}  // namespace middlefl::nn
