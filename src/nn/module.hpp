// Layer abstraction for feed-forward networks.
//
// Parameter ownership is inverted relative to most frameworks: the enclosing
// Sequential owns ONE contiguous parameter buffer and ONE gradient buffer,
// and each layer is bound to a span slice of both. Federated learning then
// treats a model as a flat float vector — aggregation (FedAvg, Eq. 6/7),
// on-device blending (Eq. 9) and cosine similarity (Eq. 8) are plain
// level-1 BLAS on that vector, with no per-layer bookkeeping.
//
// Layers cache whatever forward state their backward pass needs (im2col
// panels, ReLU masks, pool argmaxes), so a layer instance must not be shared
// between concurrently-training models. Each simulated device owns its own
// Sequential; this is the simulator's unit of parallelism.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "parallel/rng.hpp"
#include "tensor/tensor.hpp"

namespace middlefl::nn {

using tensor::Shape;
using tensor::Tensor;

class Layer {
 public:
  virtual ~Layer() = default;

  virtual std::string name() const = 0;

  /// Called once during model build with the per-sample input shape (no
  /// batch dimension); the layer caches the shapes it needs and returns the
  /// per-sample output shape. Throws std::invalid_argument on incompatible
  /// input.
  virtual Shape build(const Shape& input_shape) = 0;

  /// Number of learnable scalars; 0 for stateless layers.
  virtual std::size_t param_count() const { return 0; }

  /// Binds this layer's parameter/gradient slices. Spans must have
  /// param_count() elements and stay valid for the layer's lifetime.
  virtual void bind(std::span<float> params, std::span<float> grads) {
    (void)params;
    (void)grads;
  }

  /// Writes initial parameter values into the bound parameter span.
  virtual void init_params(parallel::Xoshiro256& rng) { (void)rng; }

  /// Computes `output` from batched `input` (dim 0 is the batch). When
  /// `training` is true the layer may cache state for backward and apply
  /// train-only behaviour (dropout).
  virtual void forward(const Tensor& input, Tensor& output, bool training) = 0;

  /// Computes `grad_input` from `grad_output` and ACCUMULATES parameter
  /// gradients into the bound gradient span. Must follow a forward call with
  /// training=true on the same input batch.
  virtual void backward(const Tensor& input, const Tensor& grad_output,
                        Tensor& grad_input) = 0;

  /// Deep copy with fresh (unbound) parameter slices.
  virtual std::unique_ptr<Layer> clone() const = 0;
};

}  // namespace middlefl::nn
