// 2-D convolution over NCHW batches, lowered to im2col + GEMM.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace middlefl::nn {

class ReLU;

struct Conv2dConfig {
  std::size_t in_channels = 1;
  std::size_t out_channels = 1;
  std::size_t kernel = 3;
  std::size_t stride = 1;
  std::size_t padding = 0;
};

class Conv2d final : public Layer {
 public:
  explicit Conv2d(Conv2dConfig config);

  std::string name() const override;
  Shape build(const Shape& input_shape) override;
  std::size_t param_count() const override;
  void bind(std::span<float> params, std::span<float> grads) override;
  void init_params(parallel::Xoshiro256& rng) override;
  void forward(const Tensor& input, Tensor& output, bool training) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;
  std::unique_ptr<Layer> clone() const override;

  /// Forward with the following ReLU folded into the per-sample GEMM
  /// epilogue (see Linear::forward_fused). The per-channel bias is a
  /// row_bias here: output row oc of each sample's GEMM is one channel
  /// plane.
  void forward_fused(const Tensor& input, Tensor& output, bool training,
                     ReLU& relu);

  const Conv2dConfig& config() const noexcept { return cfg_; }

 private:
  /// Shared body of forward()/forward_fused(): im2col + one GEMM per
  /// sample with bias (and optionally ReLU + mask) applied in the GEMM's
  /// final sweep. `relu` may be null (bias-only epilogue).
  void forward_impl(const Tensor& input, Tensor& output, bool training,
                    ReLU* relu);
  /// Expands one sample (C x H x W) into the column matrix
  /// (C*k*k) x (out_h*out_w).
  void im2col(const float* sample, float* col) const noexcept;
  /// Scatters a column-matrix gradient back onto one sample's input grad.
  void col2im(const float* col, float* sample_grad) const noexcept;

  Conv2dConfig cfg_;
  std::size_t in_h_ = 0, in_w_ = 0;
  std::size_t out_h_ = 0, out_w_ = 0;
  std::size_t col_rows_ = 0;  // C * k * k
  std::size_t col_cols_ = 0;  // out_h * out_w

  std::span<float> weight_;  // out_channels x (C*k*k), row-major
  std::span<float> bias_;    // out_channels
  std::span<float> grad_weight_;
  std::span<float> grad_bias_;

  // im2col panels for the whole batch of the last training forward, laid
  // out per sample; reused by backward for the weight-gradient GEMM.
  std::vector<float> col_cache_;
  std::size_t cached_batch_ = 0;
};

}  // namespace middlefl::nn
