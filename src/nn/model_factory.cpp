#include "nn/model_factory.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace middlefl::nn {

std::string to_string(ModelArch arch) {
  switch (arch) {
    case ModelArch::kLogistic: return "logistic";
    case ModelArch::kMlp: return "mlp";
    case ModelArch::kMlp2: return "mlp2";
    case ModelArch::kCnn2: return "cnn2";
    case ModelArch::kCnn3: return "cnn3";
  }
  return "?";
}

ModelArch parse_model_arch(const std::string& name) {
  if (name == "logistic") return ModelArch::kLogistic;
  if (name == "mlp") return ModelArch::kMlp;
  if (name == "mlp2") return ModelArch::kMlp2;
  if (name == "cnn2") return ModelArch::kCnn2;
  if (name == "cnn3") return ModelArch::kCnn3;
  throw std::invalid_argument("unknown model arch '" + name + "'");
}

namespace {

void add_conv_block(Sequential& model, std::size_t in_ch, std::size_t out_ch,
                    bool pool) {
  model.add(std::make_unique<Conv2d>(Conv2dConfig{
      .in_channels = in_ch,
      .out_channels = out_ch,
      .kernel = 3,
      .stride = 1,
      .padding = 1,
  }));
  model.add(std::make_unique<ReLU>());
  if (pool) model.add(std::make_unique<MaxPool2d>(2));
}

}  // namespace

std::unique_ptr<Sequential> build_model(const ModelSpec& spec,
                                        std::uint64_t seed) {
  if (spec.num_classes < 2) {
    throw std::invalid_argument("build_model: need at least 2 classes");
  }
  auto model = std::make_unique<Sequential>(spec.input_shape);
  switch (spec.arch) {
    case ModelArch::kLogistic: {
      model->add(std::make_unique<Flatten>());
      model->add(std::make_unique<Linear>(0, spec.num_classes));
      break;
    }
    case ModelArch::kMlp: {
      model->add(std::make_unique<Flatten>());
      model->add(std::make_unique<Linear>(0, spec.hidden));
      model->add(std::make_unique<ReLU>());
      if (spec.dropout > 0.0f) {
        model->add(std::make_unique<Dropout>(spec.dropout));
      }
      model->add(std::make_unique<Linear>(spec.hidden, spec.num_classes));
      break;
    }
    case ModelArch::kMlp2: {
      const std::size_t second = std::max<std::size_t>(4, spec.hidden / 2);
      model->add(std::make_unique<Flatten>());
      model->add(std::make_unique<Linear>(0, spec.hidden));
      model->add(std::make_unique<ReLU>());
      model->add(std::make_unique<Linear>(spec.hidden, second));
      model->add(std::make_unique<ReLU>());
      if (spec.dropout > 0.0f) {
        model->add(std::make_unique<Dropout>(spec.dropout));
      }
      model->add(std::make_unique<Linear>(second, spec.num_classes));
      break;
    }
    case ModelArch::kCnn2: {
      if (spec.input_shape.rank() != 3) {
        throw std::invalid_argument("build_model: conv archs need CHW input");
      }
      const std::size_t c = spec.base_channels;
      add_conv_block(*model, spec.input_shape.dim(0), c, /*pool=*/true);
      add_conv_block(*model, c, 2 * c, /*pool=*/true);
      model->add(std::make_unique<Flatten>());
      model->add(std::make_unique<Linear>(0, spec.hidden));
      model->add(std::make_unique<ReLU>());
      if (spec.dropout > 0.0f) {
        model->add(std::make_unique<Dropout>(spec.dropout));
      }
      model->add(std::make_unique<Linear>(spec.hidden, spec.num_classes));
      break;
    }
    case ModelArch::kCnn3: {
      if (spec.input_shape.rank() != 3) {
        throw std::invalid_argument("build_model: conv archs need CHW input");
      }
      const std::size_t c = spec.base_channels;
      add_conv_block(*model, spec.input_shape.dim(0), c, /*pool=*/true);
      add_conv_block(*model, c, 2 * c, /*pool=*/true);
      add_conv_block(*model, 2 * c, 4 * c, /*pool=*/false);
      model->add(std::make_unique<Flatten>());
      model->add(std::make_unique<Linear>(0, spec.hidden));
      model->add(std::make_unique<ReLU>());
      if (spec.dropout > 0.0f) {
        model->add(std::make_unique<Dropout>(spec.dropout));
      }
      model->add(std::make_unique<Linear>(spec.hidden, spec.num_classes));
      break;
    }
  }
  model->build(seed);
  return model;
}

}  // namespace middlefl::nn
