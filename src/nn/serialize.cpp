#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace middlefl::nn {
namespace {

/// The fingerprint covers layer names and sizes but not parameter values.
std::string architecture_description(const Sequential& model) {
  std::ostringstream out;
  out << model.input_shape().to_string();
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    out << '|' << model.layer(i).name();
  }
  return out.str();
}

}  // namespace

std::uint64_t architecture_fingerprint(const Sequential& model) {
  const std::string desc = architecture_description(model);
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64-bit
  for (unsigned char c : desc) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void save_model(const Sequential& model, std::ostream& out) {
  if (!model.built()) {
    throw std::invalid_argument("save_model: model must be built");
  }
  out << "middlefl-model v1 params=" << model.param_count()
      << " arch=" << architecture_fingerprint(model) << "\n";
  const auto params = model.parameters();
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(params.size() * sizeof(float)));
  if (!out) throw std::runtime_error("save_model: write failed");
}

void save_model_file(const Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_model_file: cannot open " + path);
  save_model(model, out);
}

void load_model(Sequential& model, std::istream& in) {
  if (!model.built()) {
    throw std::invalid_argument("load_model: model must be built");
  }
  std::string header;
  if (!std::getline(in, header)) {
    throw std::runtime_error("load_model: missing header");
  }
  std::size_t params = 0;
  std::uint64_t arch = 0;
  {
    std::istringstream hs(header);
    std::string magic, version, token;
    hs >> magic >> version;
    if (magic != "middlefl-model" || version != "v1") {
      throw std::runtime_error("load_model: bad magic '" + header + "'");
    }
    while (hs >> token) {
      if (token.rfind("params=", 0) == 0) params = std::stoul(token.substr(7));
      if (token.rfind("arch=", 0) == 0) arch = std::stoull(token.substr(5));
    }
  }
  if (params != model.param_count()) {
    throw std::runtime_error(
        "load_model: checkpoint has " + std::to_string(params) +
        " parameters, model has " + std::to_string(model.param_count()));
  }
  if (arch != architecture_fingerprint(model)) {
    throw std::runtime_error(
        "load_model: architecture fingerprint mismatch (checkpoint was saved "
        "from a different model structure)");
  }
  std::vector<float> values(params);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(params * sizeof(float)));
  if (in.gcount() !=
      static_cast<std::streamsize>(params * sizeof(float))) {
    throw std::runtime_error("load_model: truncated parameter block");
  }
  model.set_parameters(values);
}

void load_model_file(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_model_file: cannot open " + path);
  load_model(model, in);
}

}  // namespace middlefl::nn
