// Weight initialization schemes.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

#include "parallel/rng.hpp"

namespace middlefl::nn {

/// Kaiming-He normal initialization for ReLU networks: N(0, sqrt(2/fan_in)).
inline void kaiming_normal(std::span<float> weights, std::size_t fan_in,
                           parallel::Xoshiro256& rng) {
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
  for (float& w : weights) {
    w = stddev * static_cast<float>(rng.normal());
  }
}

/// Xavier-Glorot uniform initialization: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
inline void xavier_uniform(std::span<float> weights, std::size_t fan_in,
                           std::size_t fan_out, parallel::Xoshiro256& rng) {
  const float a = std::sqrt(
      6.0f / static_cast<float>((fan_in + fan_out) > 0 ? fan_in + fan_out : 1));
  for (float& w : weights) {
    w = a * (2.0f * rng.uniform_float() - 1.0f);
  }
}

inline void zeros(std::span<float> values) {
  for (float& v : values) v = 0.0f;
}

}  // namespace middlefl::nn
