#include "nn/dropout.hpp"

#include <stdexcept>

namespace middlefl::nn {

Dropout::Dropout(float p) : p_(p) {
  if (p < 0.0f || p >= 1.0f) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

std::string Dropout::name() const {
  return "Dropout(p=" + std::to_string(p_) + ")";
}

void Dropout::forward(const Tensor& input, Tensor& output, bool training) {
  output = input;
  if (!training || p_ == 0.0f) {
    cached_numel_ = 0;
    return;
  }
  if (rng_ == nullptr) {
    throw std::logic_error("Dropout: no RNG wired (layer used outside a Sequential?)");
  }
  const float keep_scale = 1.0f / (1.0f - p_);
  scale_mask_.resize(input.numel());
  cached_numel_ = input.numel();
  auto out = output.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool keep = rng_->uniform_float() >= p_;
    scale_mask_[i] = keep ? keep_scale : 0.0f;
    out[i] *= scale_mask_[i];
  }
}

void Dropout::backward(const Tensor& input, const Tensor& grad_output,
                       Tensor& grad_input) {
  grad_input = grad_output;
  if (cached_numel_ == 0) return;  // forward ran in eval mode or p == 0
  if (cached_numel_ != input.numel()) {
    throw std::logic_error("Dropout::backward: no cached forward state");
  }
  auto dx = grad_input.data();
  for (std::size_t i = 0; i < dx.size(); ++i) {
    dx[i] *= scale_mask_[i];
  }
}

std::unique_ptr<Layer> Dropout::clone() const {
  return std::make_unique<Dropout>(p_);
}

}  // namespace middlefl::nn
