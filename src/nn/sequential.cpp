#include "nn/sequential.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/linear.hpp"

namespace middlefl::nn {

Sequential::Sequential(Shape input_shape)
    : input_shape_(std::move(input_shape)) {}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  if (built_) {
    throw std::logic_error("Sequential::add: model already built");
  }
  if (layer == nullptr) {
    throw std::invalid_argument("Sequential::add: null layer");
  }
  layers_.push_back(std::move(layer));
  return *this;
}

void Sequential::build(std::uint64_t seed) {
  if (built_) throw std::logic_error("Sequential::build: already built");
  if (layers_.empty()) {
    throw std::logic_error("Sequential::build: no layers");
  }

  Shape shape = input_shape_;
  std::size_t total = 0;
  offsets_.clear();
  for (auto& layer : layers_) {
    shape = layer->build(shape);
    offsets_.push_back(total);
    total += layer->param_count();
  }
  output_shape_ = shape;

  params_.assign(total, 0.0f);
  grads_.assign(total, 0.0f);
  dropout_rng_ = parallel::Xoshiro256(parallel::splitmix64(seed ^ 0xd2'0f'1e'77));

  parallel::Xoshiro256 init_rng(seed);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const std::size_t count = layers_[i]->param_count();
    layers_[i]->bind(std::span<float>(params_).subspan(offsets_[i], count),
                     std::span<float>(grads_).subspan(offsets_[i], count));
    layers_[i]->init_params(init_rng);
    if (auto* dropout = dynamic_cast<Dropout*>(layers_[i].get())) {
      dropout->set_rng(&dropout_rng_);
    }
  }

  // Resolve Linear/Conv2d -> ReLU pairs for epilogue fusion in forward().
  fusion_.assign(layers_.size(), FusionSlot{});
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    auto* relu = dynamic_cast<ReLU*>(layers_[i + 1].get());
    if (relu == nullptr) continue;
    if (auto* linear = dynamic_cast<Linear*>(layers_[i].get())) {
      fusion_[i] = FusionSlot{linear, nullptr, relu};
    } else if (auto* conv = dynamic_cast<Conv2d*>(layers_[i].get())) {
      fusion_[i] = FusionSlot{nullptr, conv, relu};
    }
  }
  built_ = true;
}

const Shape& Sequential::output_shape() const {
  if (!built_) throw std::logic_error("Sequential: not built");
  return output_shape_;
}

void Sequential::set_parameters(std::span<const float> values) {
  if (values.size() != params_.size()) {
    throw std::invalid_argument("Sequential::set_parameters: size mismatch");
  }
  std::copy(values.begin(), values.end(), params_.begin());
}

void Sequential::zero_grad() noexcept {
  std::fill(grads_.begin(), grads_.end(), 0.0f);
}

const Tensor& Sequential::forward(const Tensor& batch, bool training) {
  if (!built_) throw std::logic_error("Sequential::forward: not built");
  if (batch.rank() == 0 ||
      batch.numel() != batch.dim(0) * input_shape_.numel()) {
    throw std::invalid_argument("Sequential::forward: batch shape " +
                                batch.shape().to_string() +
                                " incompatible with input shape " +
                                input_shape_.to_string());
  }
  activations_.resize(layers_.size());
  if (training) input_copy_ = batch;
  have_training_forward_ = training;

  const Tensor* current = &batch;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const FusionSlot& fuse = fusion_[i];
    if (fuse.relu != nullptr) {
      // Fused pair: the producer writes post-ReLU values directly into the
      // ReLU's activation slot and fills its mask; the ReLU layer itself is
      // skipped. Its nominal input slot (activations_[i]) stays stale,
      // which is safe: ReLU::backward reads only grad_output + mask.
      Tensor& out = activations_[i + 1];
      if (fuse.linear != nullptr) {
        fuse.linear->forward_fused(*current, out, training, *fuse.relu);
      } else {
        fuse.conv->forward_fused(*current, out, training, *fuse.relu);
      }
      current = &out;
      ++i;
    } else {
      layers_[i]->forward(*current, activations_[i], training);
      current = &activations_[i];
    }
  }
  return activations_.back();
}

void Sequential::backward(const Tensor& grad_output) {
  if (!have_training_forward_) {
    throw std::logic_error(
        "Sequential::backward: requires a preceding forward(training=true)");
  }
  if (grad_output.shape() != activations_.back().shape()) {
    throw std::invalid_argument("Sequential::backward: grad shape " +
                                grad_output.shape().to_string() +
                                " does not match output " +
                                activations_.back().shape().to_string());
  }
  // Ping-pong between two persistent scratch tensors: each layer reads the
  // incoming gradient from one and writes its grad_input into the other.
  // The first layer reads grad_output directly, so no copy is made.
  const Tensor* grad = &grad_output;
  std::size_t parity = 0;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& layer_input = i == 0 ? input_copy_ : activations_[i - 1];
    Tensor& grad_prev = grad_scratch_[parity];
    layers_[i]->backward(layer_input, *grad, grad_prev);
    grad = &grad_prev;
    parity ^= 1;
  }
  have_training_forward_ = false;
}

void Sequential::predict(const Tensor& batch, std::span<std::int32_t> out) {
  const std::size_t rows = batch.rank() == 0 ? 0 : batch.dim(0);
  if (out.size() != rows) {
    throw std::invalid_argument("Sequential::predict: out size " +
                                std::to_string(out.size()) +
                                " != batch rows " + std::to_string(rows));
  }
  const Tensor& logits = forward(batch, /*training=*/false);
  const std::size_t classes = logits.numel() / rows;
  const std::span<const float> values = logits.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const float> row = values.subspan(r * classes, classes);
    out[r] = static_cast<std::int32_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
}

bool Sequential::has_dropout() const noexcept {
  for (const auto& layer : layers_) {
    if (dynamic_cast<const Dropout*>(layer.get()) != nullptr) return true;
  }
  return false;
}

std::unique_ptr<Sequential> Sequential::clone() const {
  auto copy = std::make_unique<Sequential>(input_shape_);
  for (const auto& layer : layers_) {
    copy->add(layer->clone());
  }
  if (built_) {
    copy->build(0);  // seed irrelevant: parameters are overwritten next
    copy->set_parameters(params_);
  }
  return copy;
}

std::string Sequential::summary() const {
  std::ostringstream out;
  out << "Sequential[in=" << input_shape_.to_string();
  for (const auto& layer : layers_) {
    out << " -> " << layer->name();
  }
  if (built_) {
    out << " | params=" << params_.size();
  }
  out << "]";
  return out.str();
}

}  // namespace middlefl::nn
