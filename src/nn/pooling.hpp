// 2-D max pooling over NCHW batches.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace middlefl::nn {

class MaxPool2d final : public Layer {
 public:
  /// Square window; `stride == 0` means stride = kernel (non-overlapping).
  explicit MaxPool2d(std::size_t kernel, std::size_t stride = 0);

  std::string name() const override;
  Shape build(const Shape& input_shape) override;
  void forward(const Tensor& input, Tensor& output, bool training) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t channels_ = 0, in_h_ = 0, in_w_ = 0, out_h_ = 0, out_w_ = 0;
  // Flat input index of each output's max, for the whole last training
  // batch; routes gradients in backward.
  std::vector<std::size_t> argmax_;
  std::size_t cached_batch_ = 0;
};

/// 2-D average pooling (non-overlapping by default); no argmax state —
/// backward distributes the gradient uniformly over each window.
class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::size_t kernel, std::size_t stride = 0);

  std::string name() const override;
  Shape build(const Shape& input_shape) override;
  void forward(const Tensor& input, Tensor& output, bool training) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  std::size_t kernel_;
  std::size_t stride_;
  std::size_t channels_ = 0, in_h_ = 0, in_w_ = 0, out_h_ = 0, out_w_ = 0;
};

}  // namespace middlefl::nn
