#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace middlefl::nn {

using tensor::Shape;
using tensor::Tensor;

namespace {

void check_logits_labels(const Tensor& logits,
                         std::span<const std::int32_t> labels) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("loss: logits must be [batch, classes], got " +
                                logits.shape().to_string());
  }
  if (labels.size() != logits.dim(0)) {
    throw std::invalid_argument("loss: label count " +
                                std::to_string(labels.size()) +
                                " != batch size " +
                                std::to_string(logits.dim(0)));
  }
  const auto classes = static_cast<std::int32_t>(logits.dim(1));
  for (std::int32_t label : labels) {
    if (label < 0 || label >= classes) {
      throw std::out_of_range("loss: label " + std::to_string(label) +
                              " out of range for " + std::to_string(classes) +
                              " classes");
    }
  }
}

/// Writes softmax of `row` (length n) into `out`; returns log(sum(exp)).
/// Stable: shifts by the row max first.
float softmax_row(const float* row, std::size_t n, float* out) {
  const float max_val = *std::max_element(row, row + n);
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const float e = std::exp(row[j] - max_val);
    out[j] = e;
    sum += e;
  }
  const auto inv = static_cast<float>(1.0 / sum);
  for (std::size_t j = 0; j < n; ++j) out[j] *= inv;
  return max_val + static_cast<float>(std::log(sum));
}

}  // namespace

Tensor softmax(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax: expected [batch, classes]");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  Tensor probs(logits.shape());
  for (std::size_t b = 0; b < batch; ++b) {
    softmax_row(logits.data().data() + b * classes, classes,
                probs.data().data() + b * classes);
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  check_logits_labels(logits, labels);
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);

  LossResult result;
  result.grad_logits = Tensor(logits.shape());
  const float inv_batch = 1.0f / static_cast<float>(batch);
  double loss_acc = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.data().data() + b * classes;
    float* grad_row = result.grad_logits.data().data() + b * classes;
    const float log_sum = softmax_row(row, classes, grad_row);
    const auto label = static_cast<std::size_t>(labels[b]);
    loss_acc += static_cast<double>(log_sum - row[label]);
    // d/dlogits of mean CE: (softmax - onehot) / batch.
    for (std::size_t j = 0; j < classes; ++j) grad_row[j] *= inv_batch;
    grad_row[label] -= inv_batch;
  }
  result.loss = static_cast<float>(loss_acc / static_cast<double>(batch));
  return result;
}

float cross_entropy_value(const Tensor& logits,
                          std::span<const std::int32_t> labels) {
  check_logits_labels(logits, labels);
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  std::vector<float> scratch(classes);
  double loss_acc = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.data().data() + b * classes;
    const float log_sum = softmax_row(row, classes, scratch.data());
    loss_acc += static_cast<double>(
        log_sum - row[static_cast<std::size_t>(labels[b])]);
  }
  return static_cast<float>(loss_acc / static_cast<double>(batch));
}

void per_example_cross_entropy(const Tensor& logits,
                               std::span<const std::int32_t> labels,
                               std::span<float> out_losses) {
  check_logits_labels(logits, labels);
  if (out_losses.size() != labels.size()) {
    throw std::invalid_argument("per_example_cross_entropy: output size mismatch");
  }
  const std::size_t classes = logits.dim(1);
  std::vector<float> scratch(classes);
  for (std::size_t b = 0; b < labels.size(); ++b) {
    const float* row = logits.data().data() + b * classes;
    const float log_sum = softmax_row(row, classes, scratch.data());
    out_losses[b] = log_sum - row[static_cast<std::size_t>(labels[b])];
  }
}

std::size_t count_correct(const Tensor& logits,
                          std::span<const std::int32_t> labels) {
  check_logits_labels(logits, labels);
  const std::size_t classes = logits.dim(1);
  std::size_t correct = 0;
  for (std::size_t b = 0; b < labels.size(); ++b) {
    const float* row = logits.data().data() + b * classes;
    const std::size_t pred = static_cast<std::size_t>(
        std::max_element(row, row + classes) - row);
    if (pred == static_cast<std::size_t>(labels[b])) ++correct;
  }
  return correct;
}

}  // namespace middlefl::nn
