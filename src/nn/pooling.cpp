#include "nn/pooling.hpp"

#include <stdexcept>

namespace middlefl::nn {

MaxPool2d::MaxPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel_ == 0) {
    throw std::invalid_argument("MaxPool2d: kernel must be positive");
  }
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(k=" + std::to_string(kernel_) +
         ", s=" + std::to_string(stride_) + ")";
}

Shape MaxPool2d::build(const Shape& input_shape) {
  if (input_shape.rank() != 3) {
    throw std::invalid_argument("MaxPool2d: expected [C, H, W], got " +
                                input_shape.to_string());
  }
  channels_ = input_shape.dim(0);
  in_h_ = input_shape.dim(1);
  in_w_ = input_shape.dim(2);
  if (in_h_ < kernel_ || in_w_ < kernel_) {
    throw std::invalid_argument("MaxPool2d: window larger than input " +
                                input_shape.to_string());
  }
  out_h_ = (in_h_ - kernel_) / stride_ + 1;
  out_w_ = (in_w_ - kernel_) / stride_ + 1;
  return Shape{channels_, out_h_, out_w_};
}

void MaxPool2d::forward(const Tensor& input, Tensor& output, bool training) {
  const std::size_t batch = input.dim(0);
  const std::size_t in_plane = in_h_ * in_w_;
  const std::size_t out_plane = out_h_ * out_w_;
  if (input.numel() != batch * channels_ * in_plane) {
    throw std::invalid_argument("MaxPool2d::forward: bad input " +
                                input.shape().to_string());
  }
  output.reset({batch, channels_, out_h_, out_w_});
  if (training) {
    argmax_.resize(batch * channels_ * out_plane);
    cached_batch_ = batch;
  }

  const float* in = input.data().data();
  float* out = output.data().data();
  for (std::size_t bc = 0; bc < batch * channels_; ++bc) {
    const float* plane = in + bc * in_plane;
    float* out_row = out + bc * out_plane;
    std::size_t* arg_row = training ? argmax_.data() + bc * out_plane : nullptr;
    for (std::size_t oy = 0; oy < out_h_; ++oy) {
      for (std::size_t ox = 0; ox < out_w_; ++ox) {
        const std::size_t y0 = oy * stride_;
        const std::size_t x0 = ox * stride_;
        std::size_t best_idx = y0 * in_w_ + x0;
        float best = plane[best_idx];
        for (std::size_t ky = 0; ky < kernel_; ++ky) {
          const std::size_t row_base = (y0 + ky) * in_w_ + x0;
          for (std::size_t kx = 0; kx < kernel_; ++kx) {
            const float v = plane[row_base + kx];
            if (v > best) {
              best = v;
              best_idx = row_base + kx;
            }
          }
        }
        out_row[oy * out_w_ + ox] = best;
        if (arg_row != nullptr) arg_row[oy * out_w_ + ox] = best_idx;
      }
    }
  }
}

void MaxPool2d::backward(const Tensor& input, const Tensor& grad_output,
                         Tensor& grad_input) {
  const std::size_t batch = input.dim(0);
  if (cached_batch_ != batch) {
    throw std::logic_error(
        "MaxPool2d::backward: no cached forward state for this batch");
  }
  const std::size_t in_plane = in_h_ * in_w_;
  const std::size_t out_plane = out_h_ * out_w_;
  grad_input.reset(input.shape());
  float* dx = grad_input.data().data();
  const float* dy = grad_output.data().data();
  for (std::size_t bc = 0; bc < batch * channels_; ++bc) {
    float* dx_plane = dx + bc * in_plane;
    const float* dy_row = dy + bc * out_plane;
    const std::size_t* arg_row = argmax_.data() + bc * out_plane;
    for (std::size_t p = 0; p < out_plane; ++p) {
      dx_plane[arg_row[p]] += dy_row[p];
    }
  }
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>(kernel_, stride_);
}

AvgPool2d::AvgPool2d(std::size_t kernel, std::size_t stride)
    : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {
  if (kernel_ == 0) {
    throw std::invalid_argument("AvgPool2d: kernel must be positive");
  }
}

std::string AvgPool2d::name() const {
  return "AvgPool2d(k=" + std::to_string(kernel_) +
         ", s=" + std::to_string(stride_) + ")";
}

Shape AvgPool2d::build(const Shape& input_shape) {
  if (input_shape.rank() != 3) {
    throw std::invalid_argument("AvgPool2d: expected [C, H, W], got " +
                                input_shape.to_string());
  }
  channels_ = input_shape.dim(0);
  in_h_ = input_shape.dim(1);
  in_w_ = input_shape.dim(2);
  if (in_h_ < kernel_ || in_w_ < kernel_) {
    throw std::invalid_argument("AvgPool2d: window larger than input " +
                                input_shape.to_string());
  }
  out_h_ = (in_h_ - kernel_) / stride_ + 1;
  out_w_ = (in_w_ - kernel_) / stride_ + 1;
  return Shape{channels_, out_h_, out_w_};
}

void AvgPool2d::forward(const Tensor& input, Tensor& output,
                        bool /*training*/) {
  const std::size_t batch = input.dim(0);
  const std::size_t in_plane = in_h_ * in_w_;
  const std::size_t out_plane = out_h_ * out_w_;
  if (input.numel() != batch * channels_ * in_plane) {
    throw std::invalid_argument("AvgPool2d::forward: bad input " +
                                input.shape().to_string());
  }
  output.reset({batch, channels_, out_h_, out_w_});
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  const float* in = input.data().data();
  float* out = output.data().data();
  for (std::size_t bc = 0; bc < batch * channels_; ++bc) {
    const float* plane = in + bc * in_plane;
    float* out_row = out + bc * out_plane;
    for (std::size_t oy = 0; oy < out_h_; ++oy) {
      for (std::size_t ox = 0; ox < out_w_; ++ox) {
        double acc = 0.0;
        for (std::size_t ky = 0; ky < kernel_; ++ky) {
          const std::size_t row = (oy * stride_ + ky) * in_w_ + ox * stride_;
          for (std::size_t kx = 0; kx < kernel_; ++kx) {
            acc += plane[row + kx];
          }
        }
        out_row[oy * out_w_ + ox] = static_cast<float>(acc) * inv;
      }
    }
  }
}

void AvgPool2d::backward(const Tensor& input, const Tensor& grad_output,
                         Tensor& grad_input) {
  const std::size_t batch = input.dim(0);
  const std::size_t in_plane = in_h_ * in_w_;
  const std::size_t out_plane = out_h_ * out_w_;
  grad_input.reset(input.shape());
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  float* dx = grad_input.data().data();
  const float* dy = grad_output.data().data();
  for (std::size_t bc = 0; bc < batch * channels_; ++bc) {
    float* dx_plane = dx + bc * in_plane;
    const float* dy_row = dy + bc * out_plane;
    for (std::size_t oy = 0; oy < out_h_; ++oy) {
      for (std::size_t ox = 0; ox < out_w_; ++ox) {
        const float g = dy_row[oy * out_w_ + ox] * inv;
        for (std::size_t ky = 0; ky < kernel_; ++ky) {
          const std::size_t row = (oy * stride_ + ky) * in_w_ + ox * stride_;
          for (std::size_t kx = 0; kx < kernel_; ++kx) {
            dx_plane[row + kx] += g;
          }
        }
      }
    }
  }
}

std::unique_ptr<Layer> AvgPool2d::clone() const {
  return std::make_unique<AvgPool2d>(kernel_, stride_);
}

}  // namespace middlefl::nn
