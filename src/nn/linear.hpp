// Fully connected layer: y = x W^T + b.
#pragma once

#include "nn/module.hpp"

namespace middlefl::nn {

class ReLU;

class Linear final : public Layer {
 public:
  /// `in_features == 0` means "infer from the input shape at build time"
  /// (the product of all per-sample dimensions), which lets model factories
  /// stack Linear directly after Flatten without hand-computing sizes.
  Linear(std::size_t in_features, std::size_t out_features);

  std::string name() const override;
  Shape build(const Shape& input_shape) override;
  std::size_t param_count() const override;
  void bind(std::span<float> params, std::span<float> grads) override;
  void init_params(parallel::Xoshiro256& rng) override;
  void forward(const Tensor& input, Tensor& output, bool training) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;
  std::unique_ptr<Layer> clone() const override;

  /// Forward with the following ReLU folded into the GEMM epilogue:
  /// `output` receives the post-activation values in the same sweep that
  /// writes the GEMM result, and in training the ReLU's backward mask is
  /// filled through relu.fused_mask(). Bitwise identical to
  /// forward() + relu.forward(); called by Sequential for Linear->ReLU
  /// pairs detected at build time.
  void forward_fused(const Tensor& input, Tensor& output, bool training,
                     ReLU& relu);

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t declared_in_;  // 0 = infer at build
  std::size_t in_ = 0;
  std::size_t out_;
  // Views into the owning Sequential's buffers: W is out_ x in_ row-major,
  // followed by the bias of length out_.
  std::span<float> weight_;
  std::span<float> bias_;
  std::span<float> grad_weight_;
  std::span<float> grad_bias_;
};

}  // namespace middlefl::nn
