#include "nn/linear.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "tensor/blas.hpp"

namespace middlefl::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : declared_in_(in_features), in_(in_features), out_(out_features) {
  if (out_features == 0) {
    throw std::invalid_argument("Linear: out_features must be positive");
  }
}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

Shape Linear::build(const Shape& input_shape) {
  const std::size_t flat = input_shape.numel();
  if (declared_in_ == 0) {
    in_ = flat;
  } else if (flat != declared_in_) {
    throw std::invalid_argument("Linear: input shape " +
                                input_shape.to_string() + " has " +
                                std::to_string(flat) + " features, expected " +
                                std::to_string(declared_in_));
  }
  return Shape{out_};
}

std::size_t Linear::param_count() const { return out_ * in_ + out_; }

void Linear::bind(std::span<float> params, std::span<float> grads) {
  if (params.size() != param_count() || grads.size() != param_count()) {
    throw std::invalid_argument("Linear::bind: slice size mismatch");
  }
  weight_ = params.subspan(0, out_ * in_);
  bias_ = params.subspan(out_ * in_, out_);
  grad_weight_ = grads.subspan(0, out_ * in_);
  grad_bias_ = grads.subspan(out_ * in_, out_);
}

void Linear::init_params(parallel::Xoshiro256& rng) {
  kaiming_normal(weight_, in_, rng);
  zeros(bias_);
}

void Linear::forward(const Tensor& input, Tensor& output, bool /*training*/) {
  const std::size_t batch = input.dim(0);
  if (input.numel() != batch * in_) {
    throw std::invalid_argument("Linear::forward: bad input " +
                                input.shape().to_string());
  }
  output.reset_for_overwrite({batch, out_});
  // Y[b, o] = sum_i X[b, i] * W[o, i] + bias[o]; the bias rides the GEMM's
  // final sweep over Y instead of a second pass.
  tensor::GemmEpilogue epi;
  epi.col_bias = bias_.data();
  tensor::gemm(tensor::Trans::kNo, tensor::Trans::kYes, batch, out_, in_, 1.0f,
               input.data(), weight_, 0.0f, output.data(), nullptr, &epi);
}

void Linear::forward_fused(const Tensor& input, Tensor& output, bool training,
                           ReLU& relu) {
  const std::size_t batch = input.dim(0);
  if (input.numel() != batch * in_) {
    throw std::invalid_argument("Linear::forward: bad input " +
                                input.shape().to_string());
  }
  output.reset_for_overwrite({batch, out_});
  tensor::GemmEpilogue epi;
  epi.col_bias = bias_.data();
  epi.relu = true;
  if (training) epi.relu_mask = relu.fused_mask(batch * out_);
  tensor::gemm(tensor::Trans::kNo, tensor::Trans::kYes, batch, out_, in_, 1.0f,
               input.data(), weight_, 0.0f, output.data(), nullptr, &epi);
}

void Linear::backward(const Tensor& input, const Tensor& grad_output,
                      Tensor& grad_input) {
  const std::size_t batch = input.dim(0);
  if (grad_output.numel() != batch * out_) {
    throw std::invalid_argument("Linear::backward: bad grad_output " +
                                grad_output.shape().to_string());
  }
  // dW[o, i] += sum_b dY[b, o] * X[b, i], with the grad-bias column
  // reduction db[o] += sum_b dY[b, o] folded into the same sweep over dY
  // (row_sums accumulates in ascending b, matching the unfused loop).
  tensor::GemmEpilogue epi;
  epi.row_sums = grad_bias_.data();
  tensor::gemm(tensor::Trans::kYes, tensor::Trans::kNo, out_, in_, batch, 1.0f,
               grad_output.data(), input.data(), 1.0f, grad_weight_, nullptr,
               &epi);
  // dX[b, i] = sum_o dY[b, o] * W[o, i]
  grad_input.reset_for_overwrite(input.shape());
  tensor::gemm(tensor::Trans::kNo, tensor::Trans::kNo, batch, in_, out_, 1.0f,
               grad_output.data(), weight_, 0.0f, grad_input.data());
}

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(declared_in_, out_);
  copy->in_ = in_;
  return copy;
}

}  // namespace middlefl::nn
