// Flattens per-sample dimensions; a pure reshape (data is contiguous).
#pragma once

#include "nn/module.hpp"

namespace middlefl::nn {

class Flatten final : public Layer {
 public:
  std::string name() const override { return "Flatten"; }

  Shape build(const Shape& input_shape) override {
    flat_ = input_shape.numel();
    return Shape{flat_};
  }

  void forward(const Tensor& input, Tensor& output, bool /*training*/) override {
    output = input;
    output.reshape(Shape{input.dim(0), flat_});
  }

  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override {
    grad_input = grad_output;
    grad_input.reshape(input.shape());
  }

  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>();
  }

 private:
  std::size_t flat_ = 0;
};

}  // namespace middlefl::nn
