#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace middlefl::nn {

void ReLU::forward(const Tensor& input, Tensor& output, bool training) {
  output.reset(input.shape());
  const auto in = input.data();
  auto out = output.data();
  if (training) {
    if (mask_.size() < in.size()) mask_.resize(in.size());
    cached_numel_ = in.size();
    for (std::size_t i = 0; i < in.size(); ++i) {
      const bool positive = in[i] > 0.0f;
      mask_[i] = positive ? 1 : 0;
      out[i] = positive ? in[i] : 0.0f;
    }
  } else {
    for (std::size_t i = 0; i < in.size(); ++i) {
      out[i] = in[i] > 0.0f ? in[i] : 0.0f;
    }
  }
}

void ReLU::backward(const Tensor& input, const Tensor& grad_output,
                    Tensor& grad_input) {
  if (cached_numel_ != input.numel()) {
    throw std::logic_error("ReLU::backward: no cached forward state");
  }
  grad_input.reset(input.shape());
  const auto dy = grad_output.data();
  auto dx = grad_input.data();
  for (std::size_t i = 0; i < dx.size(); ++i) {
    dx[i] = mask_[i] != 0 ? dy[i] : 0.0f;
  }
}

void Tanh::forward(const Tensor& input, Tensor& output, bool training) {
  output.reset(input.shape());
  const auto in = input.data();
  auto out = output.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = std::tanh(in[i]);
  }
  if (training) {
    output_.assign(out.begin(), out.end());
    cached_numel_ = out.size();
  }
}

void Tanh::backward(const Tensor& input, const Tensor& grad_output,
                    Tensor& grad_input) {
  if (cached_numel_ != input.numel()) {
    throw std::logic_error("Tanh::backward: no cached forward state");
  }
  grad_input.reset(input.shape());
  const auto dy = grad_output.data();
  auto dx = grad_input.data();
  for (std::size_t i = 0; i < dx.size(); ++i) {
    dx[i] = dy[i] * (1.0f - output_[i] * output_[i]);
  }
}

}  // namespace middlefl::nn
