#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace middlefl::nn {

void ReLU::forward(const Tensor& input, Tensor& output, bool training) {
  output.reset_for_overwrite(input.shape());
  const auto in = input.data();
  auto out = output.data();
  if (training) {
    if (mask_.size() < in.size()) mask_.resize(in.size());
    cached_numel_ = in.size();
    for (std::size_t i = 0; i < in.size(); ++i) {
      const bool positive = in[i] > 0.0f;
      mask_[i] = positive ? 1 : 0;
      out[i] = positive ? in[i] : 0.0f;
    }
  } else {
    for (std::size_t i = 0; i < in.size(); ++i) {
      out[i] = in[i] > 0.0f ? in[i] : 0.0f;
    }
  }
}

void ReLU::backward(const Tensor& input, const Tensor& grad_output,
                    Tensor& grad_input) {
  // Validate and shape against grad_output, not `input`: under epilogue
  // fusion the preceding layer wrote this ReLU's output (and mask)
  // directly, so the activation slot holding our nominal input was never
  // filled this step. grad_output always has the activation's shape.
  static_cast<void>(input);
  if (cached_numel_ != grad_output.numel()) {
    throw std::logic_error("ReLU::backward: no cached forward state");
  }
  grad_input.reset_for_overwrite(grad_output.shape());
  const auto dy = grad_output.data();
  auto dx = grad_input.data();
  for (std::size_t i = 0; i < dx.size(); ++i) {
    dx[i] = mask_[i] != 0 ? dy[i] : 0.0f;
  }
}

void Tanh::forward(const Tensor& input, Tensor& output, bool training) {
  output.reset_for_overwrite(input.shape());
  const auto in = input.data();
  auto out = output.data();
  if (training) {
    // Cache tanh(x) for backward while writing the output — one pass,
    // into a high-water buffer (assign() reallocated every forward).
    if (output_.size() < in.size()) output_.resize(in.size());
    cached_numel_ = in.size();
    for (std::size_t i = 0; i < in.size(); ++i) {
      const float t = std::tanh(in[i]);
      out[i] = t;
      output_[i] = t;
    }
  } else {
    for (std::size_t i = 0; i < in.size(); ++i) {
      out[i] = std::tanh(in[i]);
    }
  }
}

void Tanh::backward(const Tensor& input, const Tensor& grad_output,
                    Tensor& grad_input) {
  if (cached_numel_ != input.numel()) {
    throw std::logic_error("Tanh::backward: no cached forward state");
  }
  grad_input.reset_for_overwrite(input.shape());
  const auto dy = grad_output.data();
  auto dx = grad_input.data();
  for (std::size_t i = 0; i < dx.size(); ++i) {
    dx[i] = dy[i] * (1.0f - output_[i] * output_[i]);
  }
}

}  // namespace middlefl::nn
