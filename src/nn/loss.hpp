// Classification losses and related head math.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace middlefl::nn {

struct LossResult {
  /// Mean cross-entropy over the batch.
  float loss = 0.0f;
  /// d(loss)/d(logits), already divided by the batch size; feed straight to
  /// Sequential::backward.
  tensor::Tensor grad_logits;
};

/// Numerically-stable softmax over the last dimension of a [batch, classes]
/// tensor.
tensor::Tensor softmax(const tensor::Tensor& logits);

/// Mean softmax cross-entropy; `labels` holds one class index per row.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::int32_t> labels);

/// Cross-entropy value only (no gradient) — cheaper for evaluation and the
/// Oort statistical-utility computation.
float cross_entropy_value(const tensor::Tensor& logits,
                          std::span<const std::int32_t> labels);

/// Per-example losses (used by Oort's utility, which aggregates
/// sqrt(mean of squared sample losses)).
void per_example_cross_entropy(const tensor::Tensor& logits,
                               std::span<const std::int32_t> labels,
                               std::span<float> out_losses);

/// Number of rows whose argmax equals the label.
std::size_t count_correct(const tensor::Tensor& logits,
                          std::span<const std::int32_t> labels);

}  // namespace middlefl::nn
