// Inverted dropout: activations are zeroed with probability p at train time
// and scaled by 1/(1-p) so inference needs no rescaling.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace middlefl::nn {

class Dropout final : public Layer {
 public:
  explicit Dropout(float p);

  std::string name() const override;
  Shape build(const Shape& input_shape) override { return input_shape; }

  /// The mask stream is drawn from this generator; Sequential wires its own
  /// per-model generator in during build so training stays deterministic
  /// per (seed, device, step).
  void set_rng(parallel::Xoshiro256* rng) noexcept { rng_ = rng; }

  void forward(const Tensor& input, Tensor& output, bool training) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  float p_;
  parallel::Xoshiro256* rng_ = nullptr;
  std::vector<float> scale_mask_;  // 0 or 1/(1-p) per element
  std::size_t cached_numel_ = 0;
};

}  // namespace middlefl::nn
