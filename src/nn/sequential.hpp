// Feed-forward model container owning the flat parameter & gradient buffers.
//
// Usage:
//   Sequential model(Shape{1, 16, 16});
//   model.add(std::make_unique<Conv2d>(...)).add(std::make_unique<ReLU>());
//   model.build(seed);
//   const Tensor& logits = model.forward(batch, /*training=*/true);
//   model.zero_grad();
//   model.backward(grad_logits);
//
// After build(), `parameters()` exposes the model as one contiguous float
// vector — the representation every federated-learning operation in
// src/core works on.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/module.hpp"

namespace middlefl::nn {

class Sequential {
 public:
  /// `input_shape` is the per-sample shape (no batch dimension).
  explicit Sequential(Shape input_shape);

  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Appends a layer; only valid before build().
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Finalizes the architecture: infers shapes, allocates the parameter and
  /// gradient buffers, binds layers and initializes weights from `seed`.
  void build(std::uint64_t seed);
  bool built() const noexcept { return built_; }

  const Shape& input_shape() const noexcept { return input_shape_; }
  const Shape& output_shape() const;  // per-sample; requires built()
  std::size_t param_count() const noexcept { return params_.size(); }
  std::size_t layer_count() const noexcept { return layers_.size(); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  std::span<float> parameters() noexcept { return params_; }
  std::span<const float> parameters() const noexcept { return params_; }
  std::span<float> gradients() noexcept { return grads_; }
  std::span<const float> gradients() const noexcept { return grads_; }

  /// Overwrites all parameters; `values.size()` must equal param_count().
  void set_parameters(std::span<const float> values);

  void zero_grad() noexcept;

  /// Runs the batch through all layers and returns the final activation
  /// (valid until the next forward). Batched input: dim 0 is the batch and
  /// the remaining dims must match input_shape().
  const Tensor& forward(const Tensor& batch, bool training);

  /// Backpropagates from d(loss)/d(output); accumulates into gradients().
  /// Must follow forward(batch, training=true).
  void backward(const Tensor& grad_output);

  /// Forward-only batched inference: runs `batch` (dim 0 = batch) through
  /// the network in eval mode and writes the argmax class per row into
  /// `out` (`out.size()` must equal the batch rows). Shares forward()'s
  /// fused bias+ReLU epilogues and high-water activation buffers; skips
  /// the training-only input copy and touches no gradient or optimizer
  /// state. The serving drain loop (src/serve) calls this once per
  /// coalesced batch.
  void predict(const Tensor& batch, std::span<std::int32_t> out);

  /// Deep copy: same architecture, same parameter values, fresh buffers.
  std::unique_ptr<Sequential> clone() const;

  /// True when the model contains Dropout layers (the only stochastic
  /// forward state). Requires built().
  bool has_dropout() const noexcept;
  /// The dropout mask stream. Virtual devices persist this across pooled
  /// training runtimes: assignment replaces the state only, so the layers'
  /// pointer wiring into this member is untouched.
  const parallel::Xoshiro256& dropout_rng() const noexcept {
    return dropout_rng_;
  }
  void set_dropout_rng(const parallel::Xoshiro256& rng) noexcept {
    dropout_rng_ = rng;
  }

  /// One-line architecture summary for logs.
  std::string summary() const;

 private:
  Shape input_shape_;
  Shape output_shape_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<float> params_;
  std::vector<float> grads_;
  std::vector<std::size_t> offsets_;  // param offset per layer
  parallel::Xoshiro256 dropout_rng_;
  bool built_ = false;

  // Epilogue fusion, resolved once at build(): slot i holds typed pointers
  // when layer i is a Linear/Conv2d immediately followed by a ReLU. The
  // forward loop then lets the producing layer write post-activation values
  // (and the training mask) straight into the ReLU's activation slot and
  // skips the ReLU's own forward — one sweep over the activation instead of
  // three (GEMM out, bias pass, ReLU pass). Backward is unchanged: ReLU
  // works entirely off its mask.
  struct FusionSlot {
    class Linear* linear = nullptr;
    class Conv2d* conv = nullptr;
    class ReLU* relu = nullptr;
  };
  std::vector<FusionSlot> fusion_;

  // Forward state for backward.
  Tensor input_copy_;
  std::vector<Tensor> activations_;
  bool have_training_forward_ = false;
  // Ping-pong gradient buffers for the backward sweep. Persistent members
  // (instead of locals moved layer-to-layer) keep their high-water
  // allocation, so steady-state backward passes never touch the heap.
  Tensor grad_scratch_[2];
};

}  // namespace middlefl::nn
