// Builders for the model families used in the paper's evaluation.
//
// The paper trains MNIST/EMNIST on a CNN with 2 conv + 2 fully connected
// layers, and CIFAR10/SpeechCommands on 3 conv + 2 fc (Section 6.1.2). The
// factory also offers an MLP and a logistic-regression head: the MLP is the
// fast-scale stand-in used by the default bench configuration, and logistic
// regression satisfies the convexity assumptions of the Theorem-1 analysis
// exactly (useful for the theory bench and convergence tests).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "nn/sequential.hpp"

namespace middlefl::nn {

enum class ModelArch {
  kLogistic,  // single linear layer (convex; matches Assumptions 1-2)
  kMlp,       // flatten -> linear -> relu -> linear
  kMlp2,      // two hidden ReLU layers (hidden, hidden/2)
  kCnn2,      // 2 conv + 2 fc (paper: MNIST, EMNIST)
  kCnn3,      // 3 conv + 2 fc (paper: CIFAR10, SpeechCommands)
};

std::string to_string(ModelArch arch);
ModelArch parse_model_arch(const std::string& name);

struct ModelSpec {
  Shape input_shape{1, 16, 16};  // per-sample, CHW for conv archs
  std::size_t num_classes = 10;
  ModelArch arch = ModelArch::kCnn2;
  /// Width of the first hidden fully-connected layer.
  std::size_t hidden = 64;
  /// Channel count of the first conv layer; later convs double it.
  std::size_t base_channels = 8;
  /// Dropout probability before the final classifier (0 = none).
  float dropout = 0.0f;
};

/// Constructs and builds (initializes) the model; ready for forward().
std::unique_ptr<Sequential> build_model(const ModelSpec& spec,
                                        std::uint64_t seed);

}  // namespace middlefl::nn
