#include "parallel/thread_pool.hpp"

#include <atomic>
#include <cstdlib>

namespace middlefl::parallel {
namespace {

thread_local bool tls_in_worker = false;

std::atomic<std::size_t> g_default_size{0};

std::size_t env_thread_override() {
  const char* raw = std::getenv("MIDDLEFL_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') return 0;  // not a number: ignore
  return static_cast<std::size_t>(parsed);
}

}  // namespace

bool ThreadPool::in_worker() noexcept { return tls_in_worker; }

std::size_t ThreadPool::default_size() {
  std::size_t n = g_default_size.load(std::memory_order_relaxed);
  if (n == 0) n = env_thread_override();
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return n;
}

void ThreadPool::set_default_size(std::size_t num_threads) noexcept {
  g_default_size.store(num_threads, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = default_size();
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace middlefl::parallel
