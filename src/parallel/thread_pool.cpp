#include "parallel/thread_pool.hpp"

#include <atomic>
#include <cstdlib>

namespace middlefl::parallel {
namespace {

thread_local bool tls_in_worker = false;

std::atomic<std::size_t> g_default_size{0};

std::size_t env_thread_override() {
  const char* raw = std::getenv("MIDDLEFL_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0') return 0;  // not a number: ignore
  return static_cast<std::size_t>(parsed);
}

}  // namespace

bool ThreadPool::in_worker() noexcept { return tls_in_worker; }

std::size_t ThreadPool::default_size() {
  std::size_t n = g_default_size.load(std::memory_order_relaxed);
  if (n == 0) n = env_thread_override();
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return n;
}

void ThreadPool::set_default_size(std::size_t num_threads) noexcept {
  g_default_size.store(num_threads, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t num_threads)
    : start_(obs::TraceRecorder::Clock::now()) {
  if (num_threads == 0) {
    num_threads = default_size();
  }
  cells_ = std::make_unique<WorkerCell[]>(num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_in_worker = true;
  bool named = false;  // timeline named lazily, on the first traced task
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    obs::TraceRecorder* trace = trace_.load(std::memory_order_relaxed);
    if (trace == nullptr && !accounting_.load(std::memory_order_relaxed)) {
      task();
      continue;
    }
    const auto begin = obs::TraceRecorder::Clock::now();
    task();
    const auto end = obs::TraceRecorder::Clock::now();
    WorkerCell& cell = cells_[index];
    // Single-writer cells: only this worker mutates them, so a relaxed
    // load+store pair is a race-free increment.
    cell.tasks.store(cell.tasks.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    cell.busy_us.store(
        cell.busy_us.load(std::memory_order_relaxed) +
            std::chrono::duration<double, std::micro>(end - begin).count(),
        std::memory_order_relaxed);
    if (trace != nullptr) {
      if (!named) {
        trace->name_this_thread("worker-" + std::to_string(index));
        named = true;
      }
      trace->complete("task", "pool", begin, end);
    }
  }
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> stats(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    stats[i].tasks = cells_[i].tasks.load(std::memory_order_relaxed);
    stats[i].busy_us = cells_[i].busy_us.load(std::memory_order_relaxed);
  }
  return stats;
}

double ThreadPool::uptime_us() const {
  return std::chrono::duration<double, std::micro>(
             obs::TraceRecorder::Clock::now() - start_)
      .count();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace middlefl::parallel
