#include "parallel/thread_pool.hpp"

namespace middlefl::parallel {
namespace {

thread_local bool tls_in_worker = false;

}  // namespace

bool ThreadPool::in_worker() noexcept { return tls_in_worker; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace middlefl::parallel
