// Fixed-size thread pool with a shared task queue.
//
// The simulator's unit of parallelism is coarse (one task = one device's
// local training for a time step, or one tile of a GEMM), so a single
// mutex-protected queue is sufficient; there is no work stealing. Tasks must
// not throw — exceptions escaping a task terminate, matching the simulator's
// fail-fast policy (a corrupted training step cannot be recovered mid-round).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace_recorder.hpp"

namespace middlefl::parallel {

class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  std::size_t size() const noexcept { return workers_.size(); }

  /// Per-worker busy/idle accounting, exact at serial points (pool idle).
  /// Idle time is uptime_us() minus a worker's busy_us.
  struct WorkerStats {
    std::uint64_t tasks = 0;
    double busy_us = 0.0;
  };

  /// Attaches a span recorder: every executed task becomes a "pool" span
  /// on its worker's timeline and feeds the busy counters. nullptr detaches
  /// the recorder; accounting stays on if enabled separately.
  void set_trace(obs::TraceRecorder* trace) noexcept {
    trace_.store(trace, std::memory_order_relaxed);
  }
  /// Busy/idle accounting without span recording (two clock reads per
  /// task). Off by default: the disabled hot path is one relaxed load.
  void set_accounting(bool enabled) noexcept {
    accounting_.store(enabled, std::memory_order_relaxed);
  }

  /// Snapshot of per-worker counters (index = worker). Totals are exact
  /// when no task is in flight.
  std::vector<WorkerStats> worker_stats() const;
  /// Wall microseconds since the pool was constructed.
  double uptime_us() const;

  /// Enqueue a task; returns a future for completion/exception propagation.
  template <typename F>
  std::future<void> submit(F&& task) {
    auto packaged =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(task));
    std::future<void> future = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Process-wide default pool, sized to default_size(); created on first
  /// use. Bench binaries and the simulator share it so thread counts stay
  /// bounded.
  static ThreadPool& global();

  /// Worker count global() will use: set_default_size() when called with a
  /// nonzero value, else the MIDDLEFL_THREADS environment variable, else
  /// hardware concurrency (always at least 1).
  static std::size_t default_size();

  /// Overrides default_size() (0 restores the env/hardware default). Must
  /// be called before the first global() use to affect the shared pool —
  /// CLI front ends apply their --threads flag here at startup.
  static void set_default_size(std::size_t num_threads) noexcept;

  /// True when the calling thread is a pool worker. parallel_for uses this
  /// to run nested loops inline: a worker that blocked on sub-tasks queued
  /// behind other blocked workers would deadlock the pool.
  static bool in_worker() noexcept;

 private:
  // One cache line per worker; each cell has a single writer (its worker),
  // so relaxed load+store increments are race-free.
  struct alignas(64) WorkerCell {
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<double> busy_us{0.0};
  };

  void worker_loop(std::size_t index);

  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerCell[]> cells_;
  std::atomic<obs::TraceRecorder*> trace_{nullptr};
  std::atomic<bool> accounting_{false};
  obs::TraceRecorder::Clock::time_point start_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace middlefl::parallel
