// Fixed-size thread pool with a shared task queue.
//
// The simulator's unit of parallelism is coarse (one task = one device's
// local training for a time step, or one tile of a GEMM), so a single
// mutex-protected queue is sufficient; there is no work stealing. Tasks must
// not throw — exceptions escaping a task terminate, matching the simulator's
// fail-fast policy (a corrupted training step cannot be recovered mid-round).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace middlefl::parallel {

class ThreadPool {
 public:
  /// `num_threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for completion/exception propagation.
  template <typename F>
  std::future<void> submit(F&& task) {
    auto packaged =
        std::make_shared<std::packaged_task<void()>>(std::forward<F>(task));
    std::future<void> future = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Process-wide default pool, sized to default_size(); created on first
  /// use. Bench binaries and the simulator share it so thread counts stay
  /// bounded.
  static ThreadPool& global();

  /// Worker count global() will use: set_default_size() when called with a
  /// nonzero value, else the MIDDLEFL_THREADS environment variable, else
  /// hardware concurrency (always at least 1).
  static std::size_t default_size();

  /// Overrides default_size() (0 restores the env/hardware default). Must
  /// be called before the first global() use to affect the shared pool —
  /// CLI front ends apply their --threads flag here at startup.
  static void set_default_size(std::size_t num_threads) noexcept;

  /// True when the calling thread is a pool worker. parallel_for uses this
  /// to run nested loops inline: a worker that blocked on sub-tasks queued
  /// behind other blocked workers would deadlock the pool.
  static bool in_worker() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace middlefl::parallel
