// Deterministic, splittable random number generation.
//
// FL simulations need reproducible randomness that is *stable under
// parallelism*: the stream a device draws from must depend only on
// (experiment seed, entity id, time step), never on thread scheduling.
// We derive independent streams by hashing the coordinates with
// SplitMix64 and feeding the result into a small-state xoshiro256**.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace middlefl::parallel {

/// SplitMix64 single-step mix; statistically strong enough to decorrelate
/// seed coordinates (Steele et al., "Fast Splittable Pseudorandom Number
/// Generators").
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine coordinates into one stream key (order-sensitive).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return splitmix64(a ^ (splitmix64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) +
                         (a >> 2)));
}

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies UniformRandomBitGenerator
/// so it plugs into <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    // Seed the four words through SplitMix64 as the authors recommend; this
    // guarantees a non-zero state for every seed.
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      sm = splitmix64(sm);
      word = sm;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) using the high 53 bits.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float uniform_float() noexcept {
    return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound); bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the fast path branch-free for typical bounds.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (no trig, deterministic).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double scale = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * scale;
    have_spare_ = true;
    return u * scale;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  double spare_ = 0.0;
  bool have_spare_ = false;
};

/// Factory for decorrelated per-entity streams. The typical pattern:
///   StreamRng rng(seed);
///   auto device_rng = rng.stream(device_id, time_step);
class StreamRng {
 public:
  explicit StreamRng(std::uint64_t root_seed) noexcept : root_(root_seed) {}

  /// Stream keyed by one coordinate (e.g. an entity id).
  Xoshiro256 stream(std::uint64_t a) const noexcept {
    return Xoshiro256(hash_combine(root_, a));
  }

  /// Stream keyed by two coordinates (e.g. entity id and time step).
  Xoshiro256 stream(std::uint64_t a, std::uint64_t b) const noexcept {
    return Xoshiro256(hash_combine(hash_combine(root_, a), b));
  }

  /// Stream keyed by three coordinates.
  Xoshiro256 stream(std::uint64_t a, std::uint64_t b,
                    std::uint64_t c) const noexcept {
    return Xoshiro256(
        hash_combine(hash_combine(hash_combine(root_, a), b), c));
  }

  std::uint64_t root_seed() const noexcept { return root_; }

 private:
  std::uint64_t root_;
};

}  // namespace middlefl::parallel
