// Blocking data-parallel loops over index ranges.
//
// parallel_for partitions [begin, end) into contiguous chunks, runs them on
// the pool, and waits. Determinism rule: the body must write only to
// disjoint per-index state (the FL simulator obeys this — each task owns one
// device's model). The first exception thrown by any chunk is rethrown on
// the calling thread after all chunks finish.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace middlefl::parallel {

struct GrainSize {
  /// Minimum indices per chunk; prevents tiny tasks from drowning the queue.
  std::size_t value = 1;
};

template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body&& body, GrainSize grain = {}) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.size();
  // Aim for a few chunks per worker to absorb imbalance, bounded below by
  // the grain size.
  const std::size_t target_chunks = std::max<std::size_t>(1, workers * 4);
  const std::size_t chunk =
      std::max(grain.value, (n + target_chunks - 1) / target_chunks);

  // Nested invocations (a body that itself calls parallel_for) run inline:
  // blocking a worker on sub-tasks that sit behind other blocked workers in
  // the queue would deadlock the pool.
  if (n <= chunk || workers <= 1 || ThreadPool::in_worker()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::vector<std::future<void>> futures;
  futures.reserve((n + chunk - 1) / chunk);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Convenience overload on the global pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  GrainSize grain = {}) {
  parallel_for(ThreadPool::global(), begin, end, std::forward<Body>(body),
               grain);
}

}  // namespace middlefl::parallel
