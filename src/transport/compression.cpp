#include "transport/compression.hpp"

#include <algorithm>
#include <cstdint>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace middlefl::transport {

std::size_t EncodedDelta::bytes() const noexcept {
  if (size == 0) return 0;
  switch (kind) {
    case CompressionKind::kNone:
      return size * sizeof(float);
    case CompressionKind::kTopK:
      return indices.size() * (sizeof(float) + sizeof(std::uint32_t));
    case CompressionKind::kQuant8:
      return size + sizeof(float);
  }
  return 0;
}

void EncodedDelta::clear() noexcept {
  kind = CompressionKind::kNone;
  size = 0;
  scale = 0.0f;
  codes.clear();
  indices.clear();
  values.clear();
}

void encode_delta(std::span<const float> update,
                  const CompressionConfig& config, EncodedDelta& out) {
  const std::size_t n = update.size();
  out.kind = config.kind;
  out.size = n;
  out.scale = 0.0f;
  out.codes.clear();
  out.indices.clear();
  out.values.clear();
  switch (config.kind) {
    case CompressionKind::kNone: {
      out.values.assign(update.begin(), update.end());
      return;
    }
    case CompressionKind::kTopK: {
      if (config.top_k_fraction <= 0.0 || config.top_k_fraction > 1.0) {
        throw std::invalid_argument(
            "encode_delta: top_k_fraction must be in (0, 1]");
      }
      const std::size_t k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::llround(config.top_k_fraction * static_cast<double>(n))));
      const std::size_t keep = std::min(k, n);
      // Partial selection of the k largest magnitudes; ties broken by index
      // for determinism (same comparator as the historical wire path).
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      if (keep > 0 && keep < n) {
        std::nth_element(order.begin(), order.begin() + (keep - 1), order.end(),
                         [&update](std::size_t a, std::size_t b) {
                           const float ma = std::fabs(update[a]);
                           const float mb = std::fabs(update[b]);
                           return ma != mb ? ma > mb : a < b;
                         });
      }
      order.resize(keep);
      std::sort(order.begin(), order.end());
      out.indices.reserve(keep);
      out.values.reserve(keep);
      for (const std::size_t i : order) {
        out.indices.push_back(static_cast<std::uint32_t>(i));
        out.values.push_back(update[i]);
      }
      return;
    }
    case CompressionKind::kQuant8: {
      float max_mag = 0.0f;
      for (float v : update) max_mag = std::max(max_mag, std::fabs(v));
      out.codes.resize(n);
      if (max_mag == 0.0f) {
        std::fill(out.codes.begin(), out.codes.end(), std::int8_t{0});
        return;
      }
      const float scale = max_mag / 127.0f;
      out.scale = scale;
      for (std::size_t i = 0; i < n; ++i) {
        const auto q = static_cast<int>(std::lround(update[i] / scale));
        out.codes[i] = static_cast<std::int8_t>(std::clamp(q, -127, 127));
      }
      return;
    }
  }
  throw std::logic_error("encode_delta: unhandled kind");
}

void decode_delta_into(const EncodedDelta& delta, std::span<float> out) {
  if (out.size() != delta.size) {
    throw std::invalid_argument("decode_delta_into: size mismatch");
  }
  switch (delta.kind) {
    case CompressionKind::kNone: {
      std::copy(delta.values.begin(), delta.values.end(), out.begin());
      return;
    }
    case CompressionKind::kTopK: {
      std::fill(out.begin(), out.end(), 0.0f);
      for (std::size_t i = 0; i < delta.indices.size(); ++i) {
        out[delta.indices[i]] = delta.values[i];
      }
      return;
    }
    case CompressionKind::kQuant8: {
      const float scale = delta.scale;
      for (std::size_t i = 0; i < delta.size; ++i) {
        out[i] = static_cast<float>(delta.codes[i]) * scale;
      }
      return;
    }
  }
  throw std::logic_error("decode_delta_into: unhandled kind");
}

void decode_delta_onto(const EncodedDelta& delta, std::span<const float> base,
                       std::span<float> out) {
  if (out.size() != delta.size) {
    throw std::invalid_argument("decode_delta_onto: size mismatch");
  }
  switch (delta.kind) {
    case CompressionKind::kNone: {
      // Lossless at-rest mode stores the parameters verbatim: install them
      // without arithmetic so the round-trip is bitwise-exact.
      std::copy(delta.values.begin(), delta.values.end(), out.begin());
      return;
    }
    case CompressionKind::kTopK: {
      if (base.size() != delta.size) {
        throw std::invalid_argument("decode_delta_onto: base size mismatch");
      }
      std::copy(base.begin(), base.end(), out.begin());
      for (std::size_t i = 0; i < delta.indices.size(); ++i) {
        out[delta.indices[i]] = base[delta.indices[i]] + delta.values[i];
      }
      return;
    }
    case CompressionKind::kQuant8: {
      if (base.size() != delta.size) {
        throw std::invalid_argument("decode_delta_onto: base size mismatch");
      }
      const float scale = delta.scale;
      for (std::size_t i = 0; i < delta.size; ++i) {
        out[i] = base[i] + static_cast<float>(delta.codes[i]) * scale;
      }
      return;
    }
  }
  throw std::logic_error("decode_delta_onto: unhandled kind");
}

CompressedUpdate compress_update(std::span<const float> update,
                                 const CompressionConfig& config) {
  // encode + decode, so the wire reconstruction and the at-rest storage
  // codec share one arithmetic path (bitwise-identical reconstructions).
  EncodedDelta encoded;
  encode_delta(update, config, encoded);
  CompressedUpdate out;
  out.reconstruction.resize(update.size());
  decode_delta_into(encoded, out.reconstruction);
  out.bytes = encoded.bytes();
  return out;
}

CompressedUpdate compress_model(std::span<const float> model,
                                std::span<const float> reference,
                                const CompressionConfig& config) {
  if (model.size() != reference.size()) {
    throw std::invalid_argument("compress_model: size mismatch");
  }
  std::vector<float> delta(model.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = model[i] - reference[i];
  }
  CompressedUpdate out = compress_update(delta, config);
  for (std::size_t i = 0; i < out.reconstruction.size(); ++i) {
    out.reconstruction[i] += reference[i];
  }
  return out;
}

CompressionConfig parse_compression(const std::string& spec) {
  CompressionConfig config;
  if (spec.empty() || spec == "none") {
    config.kind = CompressionKind::kNone;
    return config;
  }
  if (spec == "q8" || spec == "quant8") {
    config.kind = CompressionKind::kQuant8;
    return config;
  }
  if (spec.rfind("topk", 0) == 0) {
    config.kind = CompressionKind::kTopK;
    if (spec.size() > 4) {
      if (spec[4] != ':') {
        throw std::invalid_argument("parse_compression: expected topk:<fraction>, got '" +
                                    spec + "'");
      }
      config.top_k_fraction = std::stod(spec.substr(5));
    }
    if (config.top_k_fraction <= 0.0 || config.top_k_fraction > 1.0) {
      throw std::invalid_argument(
          "parse_compression: top-k fraction must be in (0, 1]");
    }
    return config;
  }
  throw std::invalid_argument(
      "parse_compression: unknown spec '" + spec +
      "' (expected none, topk:<fraction> or q8)");
}

std::string to_string(const CompressionConfig& config) {
  switch (config.kind) {
    case CompressionKind::kNone:
      return "none";
    case CompressionKind::kTopK:
      return "topk:" + std::to_string(config.top_k_fraction);
    case CompressionKind::kQuant8:
      return "q8";
  }
  return "unknown";
}

}  // namespace middlefl::transport
