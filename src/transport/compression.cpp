#include "transport/compression.hpp"

#include <algorithm>
#include <cstdint>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace middlefl::transport {

CompressedUpdate compress_update(std::span<const float> update,
                                 const CompressionConfig& config) {
  CompressedUpdate out;
  const std::size_t n = update.size();
  switch (config.kind) {
    case CompressionKind::kNone: {
      out.reconstruction.assign(update.begin(), update.end());
      out.bytes = n * sizeof(float);
      return out;
    }
    case CompressionKind::kTopK: {
      if (config.top_k_fraction <= 0.0 || config.top_k_fraction > 1.0) {
        throw std::invalid_argument(
            "compress_update: top_k_fraction must be in (0, 1]");
      }
      const std::size_t k = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::llround(config.top_k_fraction * static_cast<double>(n))));
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      // Partial selection of the k largest magnitudes; ties broken by index
      // for determinism.
      std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                       [&update](std::size_t a, std::size_t b) {
                         const float ma = std::fabs(update[a]);
                         const float mb = std::fabs(update[b]);
                         return ma != mb ? ma > mb : a < b;
                       });
      out.reconstruction.assign(n, 0.0f);
      for (std::size_t i = 0; i < k && i < n; ++i) {
        out.reconstruction[order[i]] = update[order[i]];
      }
      out.bytes = std::min(k, n) * (sizeof(float) + sizeof(std::uint32_t));
      return out;
    }
    case CompressionKind::kQuant8: {
      float max_mag = 0.0f;
      for (float v : update) max_mag = std::max(max_mag, std::fabs(v));
      out.reconstruction.resize(n);
      if (max_mag == 0.0f) {
        std::fill(out.reconstruction.begin(), out.reconstruction.end(), 0.0f);
      } else {
        const float scale = max_mag / 127.0f;
        for (std::size_t i = 0; i < n; ++i) {
          const auto q = static_cast<int>(std::lround(update[i] / scale));
          out.reconstruction[i] =
              static_cast<float>(std::clamp(q, -127, 127)) * scale;
        }
      }
      out.bytes = n + sizeof(float);
      return out;
    }
  }
  throw std::logic_error("compress_update: unhandled kind");
}

CompressedUpdate compress_model(std::span<const float> model,
                                std::span<const float> reference,
                                const CompressionConfig& config) {
  if (model.size() != reference.size()) {
    throw std::invalid_argument("compress_model: size mismatch");
  }
  std::vector<float> delta(model.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = model[i] - reference[i];
  }
  CompressedUpdate out = compress_update(delta, config);
  for (std::size_t i = 0; i < out.reconstruction.size(); ++i) {
    out.reconstruction[i] += reference[i];
  }
  return out;
}

CompressionConfig parse_compression(const std::string& spec) {
  CompressionConfig config;
  if (spec.empty() || spec == "none") {
    config.kind = CompressionKind::kNone;
    return config;
  }
  if (spec == "q8" || spec == "quant8") {
    config.kind = CompressionKind::kQuant8;
    return config;
  }
  if (spec.rfind("topk", 0) == 0) {
    config.kind = CompressionKind::kTopK;
    if (spec.size() > 4) {
      if (spec[4] != ':') {
        throw std::invalid_argument("parse_compression: expected topk:<fraction>, got '" +
                                    spec + "'");
      }
      config.top_k_fraction = std::stod(spec.substr(5));
    }
    if (config.top_k_fraction <= 0.0 || config.top_k_fraction > 1.0) {
      throw std::invalid_argument(
          "parse_compression: top-k fraction must be in (0, 1]");
    }
    return config;
  }
  throw std::invalid_argument(
      "parse_compression: unknown spec '" + spec +
      "' (expected none, topk:<fraction> or q8)");
}

std::string to_string(const CompressionConfig& config) {
  switch (config.kind) {
    case CompressionKind::kNone:
      return "none";
    case CompressionKind::kTopK:
      return "topk:" + std::to_string(config.top_k_fraction);
    case CompressionKind::kQuant8:
      return "q8";
  }
  return "unknown";
}

}  // namespace middlefl::transport
