// Lossy compression of model payloads for simulated links — and, since the
// fleet-scale work, the at-rest storage codec for lazy device state.
//
// The simulator models compression as reconstruct(compress(delta)): the
// receiver aggregates the lossy reconstruction, and the byte counters
// record what the wire would have carried. Deltas (w_new - w_ref against a
// reference both endpoints know, e.g. the downloaded edge model) compress
// far better than raw weights, which is why the API takes the reference
// explicitly. Historically this lived in core/; it moved here because
// compression is a property of a link, not of the training loop —
// core/compression.hpp remains as a compatibility alias.
//
// The wire path (compress_update/compress_model) is a thin wrapper over the
// split encode_delta()/decode_delta_into() pair: EncodedDelta is the actual
// compressed representation (quantized codes, kept coordinates), which the
// lazy-device layer keeps resident as the at-rest form of a device's
// divergence from its base snapshot. Splitting the codec this way keeps the
// arithmetic of both consumers literally identical — a decoded at-rest
// delta reproduces exactly the bytes the wire reconstruction would have.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace middlefl::transport {

enum class CompressionKind {
  kNone,   // full float32 payload
  kTopK,   // keep the k = fraction*n largest-magnitude entries
  kQuant8, // uniform symmetric 8-bit quantization
};

struct CompressionConfig {
  CompressionKind kind = CompressionKind::kNone;
  /// Fraction of coordinates kept by kTopK, in (0, 1].
  double top_k_fraction = 0.1;
};

struct CompressedUpdate {
  /// Lossy reconstruction of the update (same length as the input).
  std::vector<float> reconstruction;
  /// Simulated wire size of the compressed payload.
  std::size_t bytes = 0;
};

/// The compressed form of an update vector: what the wire would carry, and
/// what a lazy device stores at rest. kNone keeps the raw values verbatim
/// (decode is bitwise-exact), kTopK keeps (index, value) pairs of the k
/// largest magnitudes, kQuant8 keeps one int8 code per coordinate plus the
/// shared scale. Buffers are reused across encode() calls, so a recycled
/// EncodedDelta re-encodes without heap allocation in the steady state.
struct EncodedDelta {
  CompressionKind kind = CompressionKind::kNone;
  /// Length of the encoded update vector.
  std::size_t size = 0;
  /// kQuant8 reconstruction scale (max magnitude / 127).
  float scale = 0.0f;
  /// kQuant8: one code per coordinate, in [-127, 127].
  std::vector<std::int8_t> codes;
  /// kTopK: indices of the kept coordinates (ascending).
  std::vector<std::uint32_t> indices;
  /// kTopK: kept values (aligned with `indices`); kNone: all values.
  std::vector<float> values;

  /// Simulated storage footprint, same cost model as the wire: kNone = 4n,
  /// kTopK = 8k, kQuant8 = n + 4. Empty (size == 0) deltas cost nothing.
  std::size_t bytes() const noexcept;
  void clear() noexcept;
};

/// Encodes `update` into `out` (buffers reused). kNone stores the values
/// verbatim, so encode->decode round-trips bitwise; kTopK/kQuant8 use
/// exactly the arithmetic of compress_update.
void encode_delta(std::span<const float> update,
                  const CompressionConfig& config, EncodedDelta& out);

/// Decodes `delta` into `out` (out.size() must equal delta.size),
/// overwriting every element: the reconstruction of the encoded update.
void decode_delta_into(const EncodedDelta& delta, std::span<float> out);

/// Decodes `delta` as a divergence from `base`: out = base + decode(delta).
/// With kind == kNone the stored values are installed verbatim (no
/// arithmetic — the lossless at-rest mode must reproduce exact bits, and
/// base + (w - base) does not round-trip in floating point).
void decode_delta_onto(const EncodedDelta& delta, std::span<const float> base,
                       std::span<float> out);

/// Compresses and immediately reconstructs `update`; see CompressedUpdate.
/// Wire-size model: kNone = 4n; kTopK = 8k (float value + uint32 index per
/// kept coordinate, k >= 1); kQuant8 = n + 4 (one byte per coordinate plus
/// the scale).
CompressedUpdate compress_update(std::span<const float> update,
                                 const CompressionConfig& config);

/// Convenience: applies update compression to a full model given its
/// reference: returns ref + reconstruct(compress(model - ref)).
CompressedUpdate compress_model(std::span<const float> model,
                                std::span<const float> reference,
                                const CompressionConfig& config);

/// Parses a CLI compression spec: "none", "topk:<fraction>" (e.g.
/// "topk:0.1") or "q8". Throws std::invalid_argument on anything else.
CompressionConfig parse_compression(const std::string& spec);

/// Inverse of parse_compression, for reports.
std::string to_string(const CompressionConfig& config);

}  // namespace middlefl::transport
