// Lossy compression of model payloads for simulated links.
//
// The simulator models compression as reconstruct(compress(delta)): the
// receiver aggregates the lossy reconstruction, and the byte counters
// record what the wire would have carried. Deltas (w_new - w_ref against a
// reference both endpoints know, e.g. the downloaded edge model) compress
// far better than raw weights, which is why the API takes the reference
// explicitly. Historically this lived in core/; it moved here because
// compression is a property of a link, not of the training loop —
// core/compression.hpp remains as a compatibility alias.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace middlefl::transport {

enum class CompressionKind {
  kNone,   // full float32 payload
  kTopK,   // keep the k = fraction*n largest-magnitude entries
  kQuant8, // uniform symmetric 8-bit quantization
};

struct CompressionConfig {
  CompressionKind kind = CompressionKind::kNone;
  /// Fraction of coordinates kept by kTopK, in (0, 1].
  double top_k_fraction = 0.1;
};

struct CompressedUpdate {
  /// Lossy reconstruction of the update (same length as the input).
  std::vector<float> reconstruction;
  /// Simulated wire size of the compressed payload.
  std::size_t bytes = 0;
};

/// Compresses and immediately reconstructs `update`; see CompressedUpdate.
/// Wire-size model: kNone = 4n; kTopK = 8k (float value + uint32 index per
/// kept coordinate, k >= 1); kQuant8 = n + 4 (one byte per coordinate plus
/// the scale).
CompressedUpdate compress_update(std::span<const float> update,
                                 const CompressionConfig& config);

/// Convenience: applies update compression to a full model given its
/// reference: returns ref + reconstruct(compress(model - ref)).
CompressedUpdate compress_model(std::span<const float> model,
                                std::span<const float> reference,
                                const CompressionConfig& config);

/// Parses a CLI compression spec: "none", "topk:<fraction>" (e.g.
/// "topk:0.1") or "q8". Throws std::invalid_argument on anything else.
CompressionConfig parse_compression(const std::string& spec);

/// Inverse of parse_compression, for reports.
std::string to_string(const CompressionConfig& config);

}  // namespace middlefl::transport
