// The hierarchical transport substrate: one typed Link per channel of the
// device-edge-cloud topology, built from a per-link policy config.
//
// The Simulation routes every model transfer through these links; metrics
// and benches read traffic per channel here instead of maintaining ad-hoc
// counters. bytes_by_link() is the single source of truth for wire-level
// byte accounting (compression-aware, unlike the transfer-count estimate
// in core::CommStats::total_bytes()).
#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "transport/link.hpp"

namespace middlefl::obs {
class MetricsRegistry;
}

namespace middlefl::transport {

/// Per-link policies for the whole hierarchy. Defaults describe perfect
/// links everywhere: lossless, uncompressed, zero latency.
struct TransportConfig {
  /// Edge -> device model download at the start of a round.
  LinkPolicy wireless_down;
  /// Device -> edge model upload after local training. Supports
  /// latency_steps: delayed uploads are aggregated by the edge on arrival.
  LinkPolicy wireless_up;
  /// Edge -> cloud upload at synchronization. Supports latency_steps:
  /// stale edge models join a later cloud aggregation.
  LinkPolicy wan_up;
  /// Cloud -> edge push at synchronization.
  LinkPolicy wan_down;
  /// Cloud -> device broadcast at synchronization.
  LinkPolicy broadcast;
  /// Intra-device carry under mobility; must stay at the default (free).
  LinkPolicy carry;
};

class Transport {
 public:
  /// `uplink_shards` sizes the wireless-uplink delay queue, one shard per
  /// edge, so per-edge parallel stages can enqueue without locks.
  Transport(const TransportConfig& config, std::size_t uplink_shards);

  Link& link(LinkKind kind) { return *links_[index(kind)]; }
  const Link& link(LinkKind kind) const { return *links_[index(kind)]; }

  Link& wireless_down() { return link(LinkKind::kWirelessDown); }
  Link& wireless_up() { return link(LinkKind::kWirelessUp); }
  Link& wan_up() { return link(LinkKind::kWanUp); }
  Link& wan_down() { return link(LinkKind::kWanDown); }
  Link& broadcast() { return link(LinkKind::kBroadcast); }
  Link& carry() { return link(LinkKind::kCarry); }

  LinkStats stats(LinkKind kind) const { return link(kind).stats(); }

  struct LinkReport {
    LinkKind kind = LinkKind::kCarry;
    LinkStats stats;
    std::size_t in_flight = 0;
  };

  /// One coherent wire-accounting report across every link, in
  /// kAllLinkKinds order.
  std::vector<LinkReport> bytes_by_link() const;

  /// Total delivered wire bytes across all links (carry is free).
  std::size_t total_bytes() const;

  /// Payloads still in delay queues anywhere in the hierarchy.
  std::size_t total_in_flight() const;

  /// Publishes the current per-link totals as gauges named
  /// "transport.<link>.{transfers,dropped,bytes,in_flight}". Absolute
  /// values (idempotent), so call at any serial point — typically once
  /// before a metrics export.
  void export_metrics(obs::MetricsRegistry& metrics) const;

 private:
  static std::size_t index(LinkKind kind) {
    return static_cast<std::size_t>(kind);
  }

  std::array<std::unique_ptr<Link>, 6> links_;
};

}  // namespace middlefl::transport
