// Typed links of the device-edge-cloud hierarchy.
//
// Every model transfer in the simulator flows through Link::send(): the
// link applies its policy (loss probability, lossy compression, optional
// deterministic latency-in-steps) and accounts the traffic. Three concrete
// classes model the three physical channels of the paper's architecture:
//
//   WirelessLink  device <-> edge radio (cheap, lossy, compressible)
//   WanLink       edge <-> cloud backhaul (the expensive link HFL avoids)
//   CarryLink     the model a moving device carries in its own memory
//                 (free: zero wire bytes, no loss, no latency)
//
// Concurrency contract: send() is safe to call from parallel simulation
// stages — counters are relaxed atomics, whose totals are scheduling-
// independent because integer addition commutes — EXCEPT that sends with a
// latency policy enqueue into a shard of the delay queue, and a given
// shard must only ever be touched by one parallel task at a time (the
// simulator shards the uplink queue by destination edge, matching its
// one-task-per-edge aggregation grain). drain() is not thread-safe across
// the same shard for the same reason.
//
// Determinism contract: loss draws consume the caller-provided RNG stream
// (keyed by entity and step), never internal state, so outcomes are
// independent of thread scheduling; queued payloads are delivered in FIFO
// send order per shard.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "parallel/rng.hpp"
#include "transport/compression.hpp"

namespace middlefl::transport {

enum class LinkKind {
  kWirelessDown,  // edge -> device model download
  kWirelessUp,    // device -> edge model upload
  kWanUp,         // edge -> cloud model upload at sync
  kWanDown,       // cloud -> edge model push at sync
  kBroadcast,     // cloud -> device broadcast at sync (wireless last hop)
  kCarry,         // intra-device: the carried local model under mobility
};

inline constexpr LinkKind kAllLinkKinds[] = {
    LinkKind::kWirelessDown, LinkKind::kWirelessUp, LinkKind::kWanUp,
    LinkKind::kWanDown,      LinkKind::kBroadcast,  LinkKind::kCarry,
};

std::string to_string(LinkKind kind);

/// Per-link behaviour knobs. Defaults are a perfect link: lossless,
/// uncompressed, zero latency — under which send() degenerates to a counted
/// pass-through and runs are bitwise identical to a transport-free loop.
struct LinkPolicy {
  /// Probability that a send is lost in transit, in [0, 1].
  double loss_prob = 0.0;
  /// Lossy compression applied to the payload (delta-coded against the
  /// reference passed at send time when one is provided).
  CompressionConfig compression;
  /// Deterministic delivery delay in simulation steps: a payload sent at
  /// step t becomes available to drain() at step t + latency_steps. Only
  /// uplink-direction links (kWirelessUp, kWanUp) support latency — a
  /// delayed download has no receiver to wait in this synchronous
  /// simulator.
  std::size_t latency_steps = 0;
};

/// Monotonic traffic counters, snapshot via Link::stats().
struct LinkStats {
  std::size_t transfers = 0;  // attempted sends (including lost ones)
  std::size_t dropped = 0;    // sends lost to loss_prob
  std::size_t bytes = 0;      // wire bytes of delivered/queued payloads

  std::size_t delivered() const noexcept { return transfers - dropped; }

  LinkStats& operator+=(const LinkStats& other) noexcept {
    transfers += other.transfers;
    dropped += other.dropped;
    bytes += other.bytes;
    return *this;
  }
  /// Delta between two snapshots of the same link (stage accounting).
  LinkStats operator-(const LinkStats& earlier) const noexcept {
    return LinkStats{transfers - earlier.transfers, dropped - earlier.dropped,
                     bytes - earlier.bytes};
  }
};

/// Outcome of one send().
struct Delivery {
  /// Payload usable by the receiver right now. False when the send was
  /// lost (dropped) or is still in flight (queued).
  bool delivered = false;
  /// Sitting in the delay queue; will surface through drain() later.
  bool queued = false;
  /// The received model: the sender's span when the link is uncompressed
  /// (zero-copy), or a view of the reconstruction pushed into
  /// SendContext::arena.
  std::span<const float> payload{};
  /// Wire bytes this send put on the link (0 when dropped).
  std::size_t bytes = 0;
};

/// A payload surfacing from the delay queue.
struct Arrival {
  std::vector<float> payload;
  /// Aggregation weight recorded at send time (SendContext::weight).
  double weight = 0.0;
  std::size_t sent_step = 0;
};

/// Per-send inputs. Everything is optional under the default policy.
struct SendContext {
  /// Loss draw source; required when the link's loss_prob > 0. The link
  /// consumes exactly one uniform() per send with loss enabled.
  parallel::Xoshiro256* rng = nullptr;
  /// Delta-compression reference (both endpoints must know it). Empty =
  /// compress the raw payload.
  std::span<const float> reference{};
  /// Receives reconstruction buffers when compression is on, keeping the
  /// returned payload span alive; required when the link compresses.
  std::vector<std::vector<float>>* arena = nullptr;
  /// Current simulation step (latency bookkeeping).
  std::size_t step = 0;
  /// Delay-queue shard; see the concurrency contract above.
  std::size_t shard = 0;
  /// Metadata carried with a queued payload (e.g. FedAvg weight).
  double weight = 0.0;
  /// Optional caller-owned mirror: every bump send() applies to the link's
  /// global counters is applied here too (plain fields, no atomics). Lets
  /// a concurrent task chain account exactly the traffic it generated —
  /// phase-boundary before/after snapshots of the shared counters stop
  /// working once phases of different chains overlap in time.
  LinkStats* tally = nullptr;
};

class Link {
 public:
  virtual ~Link() = default;

  LinkKind kind() const noexcept { return kind_; }
  const LinkPolicy& policy() const noexcept { return policy_; }

  /// Counter snapshot; totals are exact at serial points (stage
  /// boundaries) regardless of how many threads sent concurrently.
  LinkStats stats() const noexcept {
    return LinkStats{transfers_.load(std::memory_order_relaxed),
                     dropped_.load(std::memory_order_relaxed),
                     bytes_.load(std::memory_order_relaxed)};
  }

  /// Pushes `payload` through the link: draws the loss outcome, applies
  /// compression, accounts bytes, and either hands the result back
  /// (delivered), swallows it (dropped) or queues it for a later step.
  Delivery send(std::span<const float> payload, const SendContext& ctx);

  /// Removes and returns the queued payloads of `shard` whose delivery
  /// step has been reached, in FIFO send order.
  std::vector<Arrival> drain(std::size_t step, std::size_t shard = 0);

  /// Payloads still sitting in the delay queue (all shards).
  std::size_t in_flight() const noexcept;

 protected:
  Link(LinkKind kind, const LinkPolicy& policy, std::size_t shards);

  /// Wire cost of a delivered payload: `raw_floats` parameters carried as
  /// `compressed_bytes` (equal to 4*raw_floats when uncompressed). The
  /// carry link overrides this to zero — the model never leaves the
  /// device.
  virtual std::size_t wire_bytes(std::size_t raw_floats,
                                 std::size_t compressed_bytes) const;

 private:
  struct Queued {
    std::vector<float> payload;
    double weight = 0.0;
    std::size_t sent_step = 0;
    std::size_t deliver_step = 0;
  };

  LinkKind kind_;
  LinkPolicy policy_;
  std::vector<std::vector<Queued>> queues_;  // one per shard
  std::atomic<std::size_t> transfers_{0};
  std::atomic<std::size_t> dropped_{0};
  std::atomic<std::size_t> bytes_{0};
};

/// Device <-> edge radio. Supports loss, compression and (uplink
/// direction) latency; queue shards map to destination edges so parallel
/// per-edge aggregation can enqueue without synchronization.
class WirelessLink final : public Link {
 public:
  WirelessLink(LinkKind kind, const LinkPolicy& policy, std::size_t shards = 1)
      : Link(kind, policy, shards) {}
};

/// Edge <-> cloud backhaul. Same mechanics as WirelessLink today; typed
/// separately so WAN-specific cost models (per-byte tariffs, bandwidth
/// caps) have a home that does not touch the radio path.
class WanLink final : public Link {
 public:
  WanLink(LinkKind kind, const LinkPolicy& policy, std::size_t shards = 1)
      : Link(kind, policy, shards) {}
};

/// The model a moving device keeps in memory: transfers are counted (they
/// are the paper's "free" on-device channel) but cost zero wire bytes and
/// must be lossless, uncompressed, and immediate — the constructor rejects
/// any other policy.
class CarryLink final : public Link {
 public:
  explicit CarryLink(const LinkPolicy& policy);

 protected:
  std::size_t wire_bytes(std::size_t, std::size_t) const override { return 0; }
};

}  // namespace middlefl::transport
