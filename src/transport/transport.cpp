#include "transport/transport.hpp"

#include <string>

#include "obs/metrics_registry.hpp"

namespace middlefl::transport {

Transport::Transport(const TransportConfig& config,
                     std::size_t uplink_shards) {
  links_[index(LinkKind::kWirelessDown)] = std::make_unique<WirelessLink>(
      LinkKind::kWirelessDown, config.wireless_down);
  links_[index(LinkKind::kWirelessUp)] = std::make_unique<WirelessLink>(
      LinkKind::kWirelessUp, config.wireless_up,
      uplink_shards == 0 ? 1 : uplink_shards);
  // The WAN uplink shares the shard count: the semi-async sync publishes
  // from inside the per-edge chains (shard n = edge n, lock-free); the
  // synchronous stage keeps using the default shard 0.
  links_[index(LinkKind::kWanUp)] = std::make_unique<WanLink>(
      LinkKind::kWanUp, config.wan_up, uplink_shards == 0 ? 1 : uplink_shards);
  links_[index(LinkKind::kWanDown)] =
      std::make_unique<WanLink>(LinkKind::kWanDown, config.wan_down);
  links_[index(LinkKind::kBroadcast)] = std::make_unique<WirelessLink>(
      LinkKind::kBroadcast, config.broadcast);
  links_[index(LinkKind::kCarry)] = std::make_unique<CarryLink>(config.carry);
}

std::vector<Transport::LinkReport> Transport::bytes_by_link() const {
  std::vector<LinkReport> report;
  report.reserve(std::size(kAllLinkKinds));
  for (LinkKind kind : kAllLinkKinds) {
    report.push_back(
        LinkReport{kind, link(kind).stats(), link(kind).in_flight()});
  }
  return report;
}

std::size_t Transport::total_bytes() const {
  std::size_t total = 0;
  for (LinkKind kind : kAllLinkKinds) total += link(kind).stats().bytes;
  return total;
}

std::size_t Transport::total_in_flight() const {
  std::size_t total = 0;
  for (LinkKind kind : kAllLinkKinds) total += link(kind).in_flight();
  return total;
}

void Transport::export_metrics(obs::MetricsRegistry& metrics) const {
  for (LinkKind kind : kAllLinkKinds) {
    const std::string prefix = std::string("transport.") + to_string(kind);
    const LinkStats stats = link(kind).stats();
    metrics.set(metrics.gauge(prefix + ".transfers"),
                static_cast<double>(stats.transfers));
    metrics.set(metrics.gauge(prefix + ".dropped"),
                static_cast<double>(stats.dropped));
    metrics.set(metrics.gauge(prefix + ".bytes"),
                static_cast<double>(stats.bytes));
    metrics.set(metrics.gauge(prefix + ".in_flight"),
                static_cast<double>(link(kind).in_flight()));
  }
}

}  // namespace middlefl::transport
