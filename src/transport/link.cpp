#include "transport/link.hpp"

#include <stdexcept>
#include <utility>

namespace middlefl::transport {

std::string to_string(LinkKind kind) {
  switch (kind) {
    case LinkKind::kWirelessDown:
      return "wireless_down";
    case LinkKind::kWirelessUp:
      return "wireless_up";
    case LinkKind::kWanUp:
      return "wan_up";
    case LinkKind::kWanDown:
      return "wan_down";
    case LinkKind::kBroadcast:
      return "broadcast";
    case LinkKind::kCarry:
      return "carry";
  }
  return "unknown";
}

Link::Link(LinkKind kind, const LinkPolicy& policy, std::size_t shards)
    : kind_(kind), policy_(policy), queues_(shards == 0 ? 1 : shards) {
  if (policy_.loss_prob < 0.0 || policy_.loss_prob > 1.0) {
    throw std::invalid_argument("Link(" + to_string(kind) +
                                "): loss_prob must be in [0, 1]");
  }
  if (policy_.latency_steps > 0 && kind != LinkKind::kWirelessUp &&
      kind != LinkKind::kWanUp) {
    throw std::invalid_argument(
        "Link(" + to_string(kind) +
        "): latency is only supported on uplink-direction links "
        "(wireless_up, wan_up)");
  }
}

std::size_t Link::wire_bytes(std::size_t raw_floats,
                             std::size_t compressed_bytes) const {
  (void)raw_floats;
  return compressed_bytes;
}

Delivery Link::send(std::span<const float> payload, const SendContext& ctx) {
  transfers_.fetch_add(1, std::memory_order_relaxed);
  if (ctx.tally != nullptr) ++ctx.tally->transfers;

  if (policy_.loss_prob > 0.0) {
    if (ctx.rng == nullptr) {
      throw std::invalid_argument("Link::send(" + to_string(kind_) +
                                  "): loss_prob > 0 requires an RNG stream");
    }
    if (ctx.rng->uniform() < policy_.loss_prob) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      if (ctx.tally != nullptr) ++ctx.tally->dropped;
      return Delivery{};  // lost in transit: no bytes, no payload
    }
  }

  // What the wire carries: the raw float32 payload, or its compressed form
  // (reconstructed immediately — the simulator never moves real packets).
  std::span<const float> received = payload;
  std::size_t carried = payload.size() * sizeof(float);
  if (policy_.compression.kind != CompressionKind::kNone) {
    CompressedUpdate update =
        ctx.reference.empty()
            ? compress_update(payload, policy_.compression)
            : compress_model(payload, ctx.reference, policy_.compression);
    carried = update.bytes;
    if (policy_.latency_steps == 0) {
      if (ctx.arena == nullptr) {
        throw std::invalid_argument(
            "Link::send(" + to_string(kind_) +
            "): compression requires an arena to own the reconstruction");
      }
      ctx.arena->push_back(std::move(update.reconstruction));
      received = ctx.arena->back();
    } else {
      // Queued sends own their payload; no arena needed.
      received = {};
      const std::size_t cost = wire_bytes(payload.size(), carried);
      bytes_.fetch_add(cost, std::memory_order_relaxed);
      if (ctx.tally != nullptr) ctx.tally->bytes += cost;
      queues_.at(ctx.shard).push_back(
          Queued{std::move(update.reconstruction), ctx.weight, ctx.step,
                 ctx.step + policy_.latency_steps});
      return Delivery{.delivered = false, .queued = true, .bytes = cost};
    }
  } else if (policy_.latency_steps > 0) {
    const std::size_t cost = wire_bytes(payload.size(), carried);
    bytes_.fetch_add(cost, std::memory_order_relaxed);
    if (ctx.tally != nullptr) ctx.tally->bytes += cost;
    queues_.at(ctx.shard).push_back(
        Queued{std::vector<float>(payload.begin(), payload.end()), ctx.weight,
               ctx.step, ctx.step + policy_.latency_steps});
    return Delivery{.delivered = false, .queued = true, .bytes = cost};
  }

  const std::size_t cost = wire_bytes(payload.size(), carried);
  bytes_.fetch_add(cost, std::memory_order_relaxed);
  if (ctx.tally != nullptr) ctx.tally->bytes += cost;
  return Delivery{
      .delivered = true, .queued = false, .payload = received, .bytes = cost};
}

std::vector<Arrival> Link::drain(std::size_t step, std::size_t shard) {
  auto& queue = queues_.at(shard);
  std::vector<Arrival> due;
  if (queue.empty()) return due;
  std::vector<Queued> keep;
  keep.reserve(queue.size());
  for (auto& item : queue) {
    if (item.deliver_step <= step) {
      due.push_back(
          Arrival{std::move(item.payload), item.weight, item.sent_step});
    } else {
      keep.push_back(std::move(item));
    }
  }
  queue = std::move(keep);
  return due;
}

std::size_t Link::in_flight() const noexcept {
  std::size_t total = 0;
  for (const auto& queue : queues_) total += queue.size();
  return total;
}

CarryLink::CarryLink(const LinkPolicy& policy)
    : Link(LinkKind::kCarry, policy, 1) {
  if (policy.loss_prob != 0.0 ||
      policy.compression.kind != CompressionKind::kNone ||
      policy.latency_steps != 0) {
    throw std::invalid_argument(
        "CarryLink: the carried model lives in the device's own memory — "
        "its policy must be lossless, uncompressed, zero-latency");
  }
}

}  // namespace middlefl::transport
