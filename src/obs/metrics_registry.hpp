// Named runtime metrics with thread-local sharding.
//
// A MetricsRegistry holds three metric families:
//
//   counter    monotonically growing double (events, bytes, drops)
//   gauge      last-writer-wins double (pool size, in-flight payloads)
//   histogram  fixed-bucket distribution of observed values (latencies)
//
// Registration (counter()/gauge()/histogram()) takes a lock and returns a
// stable MetricId; it is meant to happen at setup time. The hot-path
// operations (add/observe/set) are lock-free: each recording thread owns a
// private shard of cells, created on its first touch of the registry, and
// only ever writes its own cells. Cells are relaxed atomics so snapshot()
// can read them mid-run without tearing; cross-thread totals are exact at
// serial points because integer/double accumulation per cell has a single
// writer and the snapshot sums whole cells.
//
// snapshot() and write_json() aggregate across shards under the registry
// lock. The JSON layout is flat and stable:
//
//   {"counters": {...}, "gauges": {...},
//    "histograms": {"name": {"bounds": [...], "counts": [...],
//                            "count": N, "sum": S}}}
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace middlefl::obs {

class MetricsRegistry {
 public:
  using MetricId = std::size_t;

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  /// Registers (or looks up) a counter/gauge by name. Re-registering the
  /// same name returns the same id; registering a name that already exists
  /// as a different family throws std::invalid_argument.
  MetricId counter(const std::string& name);
  MetricId gauge(const std::string& name);

  /// Registers a histogram with the given ascending upper bucket bounds;
  /// values land in the first bucket whose bound is >= value, with one
  /// implicit overflow bucket past the last bound. Re-registering must use
  /// identical bounds.
  MetricId histogram(const std::string& name, std::vector<double> bounds);

  /// Hot-path recording. Ids must come from the matching registration call.
  void add(MetricId counter_id, double delta = 1.0);
  void set(MetricId gauge_id, double value);
  void observe(MetricId histogram_id, double value);

  struct HistogramSnapshot {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Quantile estimate from the fixed buckets, `q` in [0, 1] (clamped):
    /// the value at cumulative rank q*count, linearly interpolated within
    /// the containing bucket. Conventions for the unbounded edges: the
    /// first bucket interpolates from min(0, bounds[0]) — exact for the
    /// non-negative quantities (latencies, sizes) these histograms hold —
    /// and ranks landing in the overflow bucket report bounds.back(), the
    /// largest value the histogram can still resolve. Returns 0 when the
    /// histogram is empty. p50/p95/p99 for serving latencies; any future
    /// bench gets percentiles from the same buckets.
    double quantile(double q) const;
    /// sum / count (0 when empty) — the exact mean, no bucketing error.
    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  struct Snapshot {
    std::vector<std::pair<std::string, double>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;
  };

  /// Aggregated view across every thread shard, entries sorted by name.
  Snapshot snapshot() const;

  /// Serializes snapshot() as a single JSON object.
  void write_json(std::ostream& out) const;
  /// Writes the JSON snapshot to `path`; throws std::runtime_error when the
  /// file cannot be opened.
  void write_json_file(const std::string& path) const;

  std::size_t num_threads_seen() const;

 private:
  struct HistogramCells {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    /// Stable pointer into histogram_meta_ (a deque: growth never moves
    /// existing entries), so the hot path never touches registry state.
    const std::vector<double>* bounds = nullptr;
  };
  struct Shard {
    // deque: growth never relocates existing (non-movable) atomic cells.
    std::deque<std::atomic<double>> counters;
    std::deque<HistogramCells> histograms;
  };
  struct HistogramMeta {
    std::string name;
    std::vector<double> bounds;
  };

  Shard& local_shard();
  void grow_shard_locked(Shard& shard);

  mutable std::mutex mutex_;
  std::uint64_t generation_ = 0;  // unique per registry instance
  std::map<std::string, MetricId> counter_ids_;
  std::map<std::string, MetricId> gauge_ids_;
  std::map<std::string, MetricId> histogram_ids_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::deque<HistogramMeta> histogram_meta_;
  // Gauges are last-writer-wins: one shared cell per gauge, no sharding.
  std::deque<std::atomic<double>> gauge_cells_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace middlefl::obs
