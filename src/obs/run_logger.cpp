#include "obs/run_logger.hpp"

#include <stdexcept>

#include "obs/json.hpp"

namespace middlefl::obs {

RunLogger::RunLogger(const std::string& path) : owned_(path), out_(&owned_) {
  if (!owned_) {
    throw std::runtime_error("RunLogger: cannot write '" + path + "'");
  }
}

void RunLogger::log_step(const StepRecord& record) {
  std::ostream& out = *out_;
  out << "{\"kind\": \"step\", \"step\": " << record.step
      << ", \"synced\": " << (record.synced ? "true" : "false")
      << ", \"selected\": " << record.selected
      << ", \"stragglers\": " << record.stragglers
      << ", \"lost_downloads\": " << record.lost_downloads
      << ", \"blends\": " << record.blends
      << ", \"blend_weight_sum\": " << json_number(record.blend_weight_sum);
  if (record.synced) {
    out << ", \"contributing_edges\": " << record.contributing_edges;
  }
  out << ", \"materializations\": " << record.materializations
      << ", \"resident_peak\": " << record.resident_peak
      << ", \"delta_bytes_at_rest\": " << record.delta_bytes_at_rest;
  out << ", \"step_wall_us\": " << json_number(record.step_wall_us);
  out << ", \"phase_us\": {";
  for (std::size_t i = 0; i < record.phase_us.size(); ++i) {
    out << (i == 0 ? "" : ", ") << "\"" << json_escape(record.phase_us[i].first)
        << "\": " << json_number(record.phase_us[i].second);
  }
  out << "}, \"links\": {";
  for (std::size_t i = 0; i < record.links.size(); ++i) {
    const LinkDeltaRecord& link = record.links[i];
    out << (i == 0 ? "" : ", ") << "\"" << json_escape(link.link)
        << "\": {\"transfers\": " << link.transfers
        << ", \"dropped\": " << link.dropped << ", \"bytes\": " << link.bytes
        << ", \"in_flight\": " << link.in_flight << "}";
  }
  out << "}}\n";
  ++records_;
}

void RunLogger::log_eval(const EvalRecord& record) {
  *out_ << "{\"kind\": \"eval\", \"step\": " << record.step
        << ", \"accuracy\": " << json_number(record.accuracy)
        << ", \"loss\": " << json_number(record.loss)
        << ", \"wall_us\": " << json_number(record.wall_us) << "}\n";
  ++records_;
}

void RunLogger::log_line(const std::string& line) {
  *out_ << line << "\n";
  ++records_;
}

void RunLogger::flush() { out_->flush(); }

}  // namespace middlefl::obs
