// Minimal JSON emission helpers shared by the observability exporters.
//
// The repo has no external JSON dependency; every exporter (Chrome trace,
// metrics snapshot, JSONL run log) hand-rolls its structure and uses these
// helpers only for the parts that are easy to get wrong: string escaping
// and locale/precision-stable number formatting.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace middlefl::obs {

/// Escapes `text` for use inside a JSON string literal (quotes not
/// included): backslash, double quote, and control characters.
inline std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a double as a JSON number. JSON has no NaN/Inf; both map to 0 so
/// exporters can never emit an unparseable file.
inline std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace middlefl::obs
