// Structured run logs: one JSON object per line (JSONL).
//
// The RunLogger is the machine-readable flight record of a simulation run:
// the instrumented caller hands it one StepRecord per time step (phase
// timings, per-link wire-traffic deltas, selection/straggler/blend counts)
// and one EvalRecord per evaluation point; each becomes a single
// self-contained JSON line, so logs stream, tail, and grep cleanly and
// load with one `json.loads` per line.
//
// The logger is deliberately passive — it formats and writes exactly what
// it is given, on the caller's thread, at serial points. It holds no
// references into the simulation and cannot perturb it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <vector>

namespace middlefl::obs {

/// Wire-traffic delta of one link over one step.
struct LinkDeltaRecord {
  std::string link;  // transport::to_string(kind)
  std::size_t transfers = 0;
  std::size_t dropped = 0;
  std::size_t bytes = 0;
  std::size_t in_flight = 0;  // absolute queue depth at end of step
};

/// Everything the simulator knows about one completed step.
struct StepRecord {
  std::size_t step = 0;
  bool synced = false;
  std::size_t selected = 0;
  std::size_t stragglers = 0;
  std::size_t lost_downloads = 0;
  std::size_t blends = 0;
  double blend_weight_sum = 0.0;
  /// Edge models aggregated by the cloud this step (sync steps only).
  std::size_t contributing_edges = 0;
  /// Fleet (lazy device) accounting: resident-buffer checkouts this step,
  /// peak concurrently-resident devices, and the simulated storage
  /// footprint of all at-rest deltas at end of step. All zero when the
  /// run uses eager devices.
  std::uint64_t materializations = 0;
  std::uint64_t resident_peak = 0;
  std::uint64_t delta_bytes_at_rest = 0;
  /// Wall time of the whole step on the driving thread.
  double step_wall_us = 0.0;
  /// Named phase timings, summed across per-edge chains (CPU-time per
  /// phase, not wall time, when chains run in parallel).
  std::vector<std::pair<const char*, double>> phase_us;
  std::vector<LinkDeltaRecord> links;
};

/// One evaluation point.
struct EvalRecord {
  std::size_t step = 0;
  double accuracy = 0.0;
  double loss = 0.0;
  double wall_us = 0.0;
};

class RunLogger {
 public:
  /// Appends to `path` is false — the file is truncated and owned.
  /// Throws std::runtime_error when the file cannot be opened.
  explicit RunLogger(const std::string& path);
  /// Writes to an external stream; the caller keeps ownership.
  explicit RunLogger(std::ostream& out) : out_(&out) {}
  RunLogger(const RunLogger&) = delete;
  RunLogger& operator=(const RunLogger&) = delete;

  void log_step(const StepRecord& record);
  void log_eval(const EvalRecord& record);
  /// Writes one caller-formatted JSONL row verbatim (plus the newline) —
  /// used by sweep runners that assemble rows from whole-run summaries
  /// rather than per-step records. `line` must be one complete JSON
  /// object without a trailing newline.
  void log_line(const std::string& line);

  std::size_t records_written() const noexcept { return records_; }
  void flush();

 private:
  std::ofstream owned_;
  std::ostream* out_ = nullptr;
  std::size_t records_ = 0;
};

}  // namespace middlefl::obs
