// The observability bundle handed to instrumented components.
//
// All three recorders are optional and non-owning: a component holds an
// Observability by value and checks each pointer before touching it, so a
// default-constructed (all-null) bundle is the zero-cost disabled path —
// one pointer test per would-be instrumentation site, no clock reads, no
// allocation, no locks. The recorders must outlive every component they
// are attached to.
//
// Lifecycle: construct the recorders, attach them (Simulation::
// set_observability, ThreadPool::set_trace, ...), run, then export at a
// serial point (write_chrome_trace / write_json / the JSONL file is
// already on disk). Recording never mutates simulation state or consumes
// RNG draws, so an instrumented run is bit-identical to a bare one.
#pragma once

#include "obs/metrics_registry.hpp"
#include "obs/run_logger.hpp"
#include "obs/trace_recorder.hpp"

namespace middlefl::obs {

struct Observability {
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
  RunLogger* logger = nullptr;

  bool enabled() const noexcept {
    return trace != nullptr || metrics != nullptr || logger != nullptr;
  }
};

}  // namespace middlefl::obs
