#include "obs/trace_recorder.hpp"

#include <atomic>
#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace middlefl::obs {
namespace {

std::atomic<std::uint64_t> g_recorder_generation{1};

struct TlsBufferCache {
  std::uint64_t generation = 0;
  void* buffer = nullptr;
};
thread_local TlsBufferCache tls_buffer_cache;

}  // namespace

TraceRecorder::TraceRecorder(std::size_t events_per_thread)
    : epoch_(Clock::now()),
      capacity_(events_per_thread == 0 ? 1 : events_per_thread),
      generation_(
          g_recorder_generation.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  if (tls_buffer_cache.generation == generation_) {
    return *static_cast<ThreadBuffer*>(tls_buffer_cache.buffer);
  }
  std::lock_guard lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buffer = buffers_.back().get();
  buffer->tid = buffers_.size() - 1;
  buffer->ring.reserve(capacity_);
  tls_buffer_cache = TlsBufferCache{generation_, buffer};
  return *buffer;
}

void TraceRecorder::push(Event event) {
  ThreadBuffer& buffer = local_buffer();
  if (buffer.ring.size() < capacity_) {
    buffer.ring.push_back(std::move(event));
  } else {
    buffer.ring[buffer.head] = std::move(event);
  }
  buffer.head = (buffer.head + 1) % capacity_;
  ++buffer.written;
}

void TraceRecorder::complete(std::string name, const char* cat,
                             Clock::time_point begin, Clock::time_point end,
                             std::uint64_t arg, const char* arg_name) {
  Event event;
  event.ph = 'X';
  event.name = std::move(name);
  event.cat = cat;
  event.ts_us = std::chrono::duration<double, std::micro>(begin - epoch_).count();
  event.dur_us = std::chrono::duration<double, std::micro>(end - begin).count();
  event.arg = arg;
  event.arg_name = arg_name;
  push(std::move(event));
}

void TraceRecorder::instant(std::string name, const char* cat,
                            std::uint64_t arg, const char* arg_name) {
  Event event;
  event.ph = 'i';
  event.name = std::move(name);
  event.cat = cat;
  event.ts_us = now_us();
  event.arg = arg;
  event.arg_name = arg_name;
  push(std::move(event));
}

void TraceRecorder::counter(std::string name, const char* cat, double value) {
  Event event;
  event.ph = 'C';
  event.name = std::move(name);
  event.cat = cat;
  event.ts_us = now_us();
  event.value = value;
  push(std::move(event));
}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch_)
      .count();
}

void TraceRecorder::name_this_thread(std::string name) {
  local_buffer().thread_name = std::move(name);
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->ring.size();
  return total;
}

std::size_t TraceRecorder::dropped_events() const {
  std::lock_guard lock(mutex_);
  std::size_t dropped = 0;
  for (const auto& buffer : buffers_) {
    dropped += buffer->written - buffer->ring.size();
  }
  return dropped;
}

std::size_t TraceRecorder::num_threads_seen() const {
  std::lock_guard lock(mutex_);
  return buffers_.size();
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  std::lock_guard lock(mutex_);
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto emit = [&](const ThreadBuffer& buffer, const Event& event) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << " {\"pid\": 1, \"tid\": " << buffer.tid << ", \"ph\": \""
        << event.ph << "\", \"name\": \"" << json_escape(event.name)
        << "\", \"cat\": \"" << json_escape(event.cat) << "\", \"ts\": "
        << json_number(event.ts_us);
    if (event.ph == 'X') {
      out << ", \"dur\": " << json_number(event.dur_us);
    }
    if (event.ph == 'i') {
      out << ", \"s\": \"t\"";  // thread-scoped instant
    }
    if (event.ph == 'C') {
      out << ", \"args\": {\"value\": " << json_number(event.value) << "}";
    } else if (event.arg_name != nullptr) {
      out << ", \"args\": {\"" << json_escape(event.arg_name)
          << "\": " << event.arg << "}";
    }
    out << "}";
  };
  for (const auto& buffer : buffers_) {
    if (!buffer->thread_name.empty()) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << " {\"pid\": 1, \"tid\": " << buffer->tid
          << ", \"ph\": \"M\", \"name\": \"thread_name\", \"args\": "
          << "{\"name\": \"" << json_escape(buffer->thread_name) << "\"}}";
    }
    // Chronological order: a wrapped ring starts at head (the oldest
    // retained event), an unwrapped one at 0.
    const bool wrapped = buffer->written > buffer->ring.size();
    const std::size_t count = buffer->ring.size();
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t idx = wrapped ? (buffer->head + i) % count : i;
      emit(*buffer, buffer->ring[idx]);
    }
  }
  out << (first ? "]}\n" : "\n]}\n");
}

void TraceRecorder::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("TraceRecorder: cannot write '" + path + "'");
  }
  write_chrome_trace(out);
}

}  // namespace middlefl::obs
