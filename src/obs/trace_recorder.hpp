// Span tracing with Chrome trace-event export.
//
// A TraceRecorder collects timing events — complete spans ("X"), instant
// markers ("i") and counter samples ("C") — into per-thread ring buffers:
// every recording thread owns a private fixed-capacity buffer created on
// its first event, so the hot path takes no locks and threads never
// contend. When a buffer fills, the oldest events are overwritten (the
// recorder keeps the tail of the run) and the drop is counted.
//
// write_chrome_trace() serializes everything as Chrome trace-event JSON
// ({"traceEvents": [...]}), loadable in Perfetto (https://ui.perfetto.dev)
// or chrome://tracing, with one timeline row per recording thread. Export
// must happen at a serial point: no thread may be recording while the
// buffers are read (the simulator exports after run()/step() returns, when
// the pool is quiescent).
//
// Timestamps come from std::chrono::steady_clock relative to the
// recorder's construction. Recording only reads the clock — it never draws
// randomness or touches simulation state — so tracing cannot perturb a
// run; the null-recorder fast path (callers hold a TraceRecorder* and skip
// everything when it is null, which TraceSpan does for them) makes
// disabled tracing a single pointer test.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace middlefl::obs {

class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  /// `events_per_thread` caps each thread's ring buffer; the oldest events
  /// are overwritten past that.
  explicit TraceRecorder(std::size_t events_per_thread = 1 << 15);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  ~TraceRecorder();

  /// Records a complete span [begin, end) on the calling thread's
  /// timeline. `arg_name`, when non-null, attaches {"arg_name": arg} to
  /// the event. `name` may be dynamic; `cat`/`arg_name` must be literals
  /// (stored as pointers).
  void complete(std::string name, const char* cat, Clock::time_point begin,
                Clock::time_point end, std::uint64_t arg = 0,
                const char* arg_name = nullptr);

  /// Records a zero-duration instant marker at now().
  void instant(std::string name, const char* cat, std::uint64_t arg = 0,
               const char* arg_name = nullptr);

  /// Records a counter sample ("C" event) at now(); Perfetto renders these
  /// as a per-name value track.
  void counter(std::string name, const char* cat, double value);

  /// Microseconds elapsed since recorder construction.
  double now_us() const;

  /// Names the calling thread's timeline row ("main", "worker-3", ...).
  void name_this_thread(std::string name);

  /// Events currently retained / overwritten across all threads. Serial
  /// points only (same contract as write_chrome_trace).
  std::size_t event_count() const;
  std::size_t dropped_events() const;
  std::size_t num_threads_seen() const;

  /// Serializes all retained events as Chrome trace-event JSON. Serial
  /// points only.
  void write_chrome_trace(std::ostream& out) const;
  /// Writes the trace to `path`; throws std::runtime_error on open failure.
  void write_chrome_trace_file(const std::string& path) const;

 private:
  struct Event {
    double ts_us = 0.0;
    double dur_us = 0.0;   // "X" only
    double value = 0.0;    // "C" only
    std::uint64_t arg = 0;
    const char* cat = "";
    const char* arg_name = nullptr;
    char ph = 'X';
    std::string name;
  };
  struct ThreadBuffer {
    std::size_t tid = 0;  // dense id in registration order
    std::string thread_name;
    std::vector<Event> ring;
    std::size_t head = 0;     // next write slot
    std::size_t written = 0;  // total events pushed
  };

  ThreadBuffer& local_buffer();
  void push(Event event);

  const Clock::time_point epoch_;
  const std::size_t capacity_;
  const std::uint64_t generation_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: times its scope and records a complete event on destruction.
/// A null recorder makes construction and destruction no-ops (no clock
/// reads) — the zero-cost disabled path.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, std::string name, const char* cat,
            std::uint64_t arg = 0, const char* arg_name = nullptr)
      : recorder_(recorder) {
    if (recorder_ != nullptr) {
      name_ = std::move(name);
      cat_ = cat;
      arg_ = arg;
      arg_name_ = arg_name;
      begin_ = TraceRecorder::Clock::now();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->complete(std::move(name_), cat_,
                          begin_, TraceRecorder::Clock::now(), arg_,
                          arg_name_);
    }
  }

 private:
  TraceRecorder* recorder_;
  std::string name_;
  const char* cat_ = "";
  std::uint64_t arg_ = 0;
  const char* arg_name_ = nullptr;
  TraceRecorder::Clock::time_point begin_{};
};

}  // namespace middlefl::obs
