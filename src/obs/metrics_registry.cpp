#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace middlefl::obs {
namespace {

std::atomic<std::uint64_t> g_registry_generation{1};

/// Per-thread cache of the shard owned by (this thread, one registry).
/// Generations are process-unique and never reused, so a stale entry can
/// never alias a new registry — it just misses and takes the slow path.
struct TlsShardCache {
  std::uint64_t generation = 0;
  void* shard = nullptr;
};
thread_local TlsShardCache tls_shard_cache;

}  // namespace

MetricsRegistry::MetricsRegistry()
    : generation_(
          g_registry_generation.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::MetricId MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (gauge_ids_.count(name) != 0 || histogram_ids_.count(name) != 0) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another family");
  }
  const auto [it, inserted] = counter_ids_.emplace(name, counter_names_.size());
  if (inserted) counter_names_.push_back(name);
  return it->second;
}

MetricsRegistry::MetricId MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (counter_ids_.count(name) != 0 || histogram_ids_.count(name) != 0) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another family");
  }
  const auto [it, inserted] = gauge_ids_.emplace(name, gauge_names_.size());
  if (inserted) {
    gauge_names_.push_back(name);
    gauge_cells_.emplace_back(0.0);
  }
  return it->second;
}

MetricsRegistry::MetricId MetricsRegistry::histogram(
    const std::string& name, std::vector<double> bounds) {
  if (bounds.empty() || !std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument(
        "MetricsRegistry: histogram bounds must be non-empty and ascending");
  }
  std::lock_guard lock(mutex_);
  if (counter_ids_.count(name) != 0 || gauge_ids_.count(name) != 0) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already registered as another family");
  }
  const auto it = histogram_ids_.find(name);
  if (it != histogram_ids_.end()) {
    if (histogram_meta_[it->second].bounds != bounds) {
      throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                  "' re-registered with different bounds");
    }
    return it->second;
  }
  const MetricId id = histogram_meta_.size();
  histogram_ids_.emplace(name, id);
  histogram_meta_.push_back(HistogramMeta{name, std::move(bounds)});
  return id;
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  if (tls_shard_cache.generation == generation_) {
    return *static_cast<Shard*>(tls_shard_cache.shard);
  }
  std::lock_guard lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  grow_shard_locked(*shard);
  tls_shard_cache = TlsShardCache{generation_, shard};
  return *shard;
}

void MetricsRegistry::grow_shard_locked(Shard& shard) {
  while (shard.counters.size() < counter_names_.size()) {
    shard.counters.emplace_back(0.0);
  }
  while (shard.histograms.size() < histogram_meta_.size()) {
    const HistogramMeta& meta = histogram_meta_[shard.histograms.size()];
    auto& cells = shard.histograms.emplace_back();
    const std::size_t buckets = meta.bounds.size() + 1;
    cells.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
    for (std::size_t b = 0; b < buckets; ++b) cells.buckets[b] = 0;
    cells.bounds = &meta.bounds;
  }
}

void MetricsRegistry::add(MetricId counter_id, double delta) {
  Shard& shard = local_shard();
  if (counter_id >= shard.counters.size()) {
    std::lock_guard lock(mutex_);
    if (counter_id >= counter_names_.size()) {
      throw std::out_of_range("MetricsRegistry::add: unknown counter id");
    }
    grow_shard_locked(shard);
  }
  // Single-writer cell: only the owning thread stores, so load+store is a
  // race-free increment; snapshot() reads whole cells atomically.
  auto& cell = shard.counters[counter_id];
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void MetricsRegistry::set(MetricId gauge_id, double value) {
  // Gauges are last-writer-wins shared cells; setting is a serial-point
  // operation (pool stats, queue depths), so the lock is off the hot path.
  std::lock_guard lock(mutex_);
  if (gauge_id >= gauge_cells_.size()) {
    throw std::out_of_range("MetricsRegistry::set: unknown gauge id");
  }
  gauge_cells_[gauge_id].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::observe(MetricId histogram_id, double value) {
  Shard& shard = local_shard();
  if (histogram_id >= shard.histograms.size()) {
    std::lock_guard lock(mutex_);
    if (histogram_id >= histogram_meta_.size()) {
      throw std::out_of_range("MetricsRegistry::observe: unknown histogram id");
    }
    grow_shard_locked(shard);
  }
  HistogramCells& cells = shard.histograms[histogram_id];
  const std::vector<double>& bounds = *cells.bounds;
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  auto& slot = cells.buckets[bucket];
  slot.store(slot.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  cells.count.store(cells.count.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  cells.sum.store(cells.sum.load(std::memory_order_relaxed) + value,
                  std::memory_order_relaxed);
}

double MetricsRegistry::HistogramSnapshot::quantile(double q) const {
  if (count == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target cumulative rank in (0, count]; the max(.., small) keeps q=0 on
  // the first populated bucket's lower edge instead of before it.
  const double rank = std::max(q * static_cast<double>(count), 1e-12);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double in_bucket = static_cast<double>(counts[b]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      if (b >= bounds.size()) return bounds.back();  // overflow bucket
      const double lo = b == 0 ? std::min(0.0, bounds[0]) : bounds[b - 1];
      const double hi = bounds[b];
      const double fraction = (rank - cumulative) / in_bucket;
      return lo + fraction * (hi - lo);
    }
    cumulative += in_bucket;
  }
  // Every count sits below rank only through floating-point drift; report
  // the top of the resolvable range.
  return bounds.back();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counter_names_.size());
  for (std::size_t id = 0; id < counter_names_.size(); ++id) {
    double total = 0.0;
    for (const auto& shard : shards_) {
      if (id < shard->counters.size()) {
        total += shard->counters[id].load(std::memory_order_relaxed);
      }
    }
    snap.counters.emplace_back(counter_names_[id], total);
  }
  snap.gauges.reserve(gauge_names_.size());
  for (std::size_t id = 0; id < gauge_names_.size(); ++id) {
    snap.gauges.emplace_back(gauge_names_[id],
                             gauge_cells_[id].load(std::memory_order_relaxed));
  }
  snap.histograms.reserve(histogram_meta_.size());
  for (std::size_t id = 0; id < histogram_meta_.size(); ++id) {
    HistogramSnapshot hist;
    hist.name = histogram_meta_[id].name;
    hist.bounds = histogram_meta_[id].bounds;
    hist.counts.assign(hist.bounds.size() + 1, 0);
    for (const auto& shard : shards_) {
      if (id >= shard->histograms.size()) continue;
      const HistogramCells& cells = shard->histograms[id];
      for (std::size_t b = 0; b < hist.counts.size(); ++b) {
        hist.counts[b] += cells.buckets[b].load(std::memory_order_relaxed);
      }
      hist.count += cells.count.load(std::memory_order_relaxed);
      hist.sum += cells.sum.load(std::memory_order_relaxed);
    }
    snap.histograms.push_back(std::move(hist));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  const Snapshot snap = snapshot();
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << json_escape(snap.counters[i].first)
        << "\": " << json_number(snap.counters[i].second);
  }
  out << (snap.counters.empty() ? "},\n" : "\n  },\n");
  out << "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << json_escape(snap.gauges[i].first)
        << "\": " << json_number(snap.gauges[i].second);
  }
  out << (snap.gauges.empty() ? "},\n" : "\n  },\n");
  out << "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& hist = snap.histograms[i];
    out << (i == 0 ? "\n" : ",\n") << "    \"" << json_escape(hist.name)
        << "\": {\"bounds\": [";
    for (std::size_t b = 0; b < hist.bounds.size(); ++b) {
      out << (b == 0 ? "" : ", ") << json_number(hist.bounds[b]);
    }
    out << "], \"counts\": [";
    for (std::size_t b = 0; b < hist.counts.size(); ++b) {
      out << (b == 0 ? "" : ", ") << hist.counts[b];
    }
    out << "], \"count\": " << hist.count
        << ", \"sum\": " << json_number(hist.sum) << "}";
  }
  out << (snap.histograms.empty() ? "}\n" : "\n  }\n");
  out << "}\n";
}

void MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("MetricsRegistry: cannot write '" + path + "'");
  }
  write_json(out);
}

std::size_t MetricsRegistry::num_threads_seen() const {
  std::lock_guard lock(mutex_);
  return shards_.size();
}

}  // namespace middlefl::obs
