// Umbrella header: the complete public API of the middlefl library.
//
// Downstream users can include this single header; the sub-headers remain
// individually includable for faster builds.
#pragma once

// Substrates, bottom-up.
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

#include "obs/metrics_registry.hpp"
#include "obs/observability.hpp"
#include "obs/run_logger.hpp"
#include "obs/trace_recorder.hpp"

#include "parallel/parallel_for.hpp"
#include "parallel/rng.hpp"
#include "parallel/thread_pool.hpp"

#include "tensor/blas.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dropout.hpp"
#include "nn/flatten.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/model_factory.hpp"
#include "nn/module.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"

#include "optim/adam.hpp"
#include "optim/lr_schedule.hpp"
#include "optim/optimizer.hpp"
#include "optim/sgd.hpp"

#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "data/sampler.hpp"
#include "data/synthetic.hpp"

#include "mobility/markov_mobility.hpp"
#include "mobility/mobility_model.hpp"
#include "mobility/random_waypoint.hpp"
#include "mobility/trace.hpp"

#include "transport/compression.hpp"
#include "transport/link.hpp"
#include "transport/transport.hpp"

// The paper's contribution.
#include "core/aggregation.hpp"
#include "core/algorithms.hpp"
#include "core/comm_stats.hpp"
#include "core/compression.hpp"
#include "core/convergence.hpp"
#include "core/entities.hpp"
#include "core/metrics.hpp"
#include "core/selection.hpp"
#include "core/similarity.hpp"
#include "core/simulation.hpp"
#include "core/step_observer.hpp"
