// 2-D random-waypoint mobility with nearest-edge association.
//
// Replaces the ONE-simulator traces of §6.1.1: devices move on a
// [0, width] x [0, height] plane under the classic random-waypoint model
// (pick a uniform destination, travel at a uniform speed, optionally pause,
// repeat), and each device associates with the geographically nearest edge
// (paper Eq. 3, "each device always connects to the nearest edge"). Edges
// are laid out on a regular grid covering the plane.
//
// The emergent cross-edge rate depends on speed; `calibrate_speed` searches
// for the speed whose empirical rate matches a target global mobility P, so
// waypoint runs can be compared against Markov runs at equal P.
#pragma once

#include "mobility/mobility_model.hpp"
#include "parallel/rng.hpp"

namespace middlefl::mobility {

struct WaypointConfig {
  std::size_t num_devices = 100;
  std::size_t num_edges = 10;
  double width = 1000.0;   // meters
  double height = 1000.0;  // meters
  double speed_min = 20.0;       // distance units per time step
  double speed_max = 60.0;
  /// Probability of pausing (staying put) after reaching a waypoint.
  double pause_probability = 0.1;
  std::uint64_t seed = 7;
};

struct Point {
  double x = 0.0;
  double y = 0.0;
};

class RandomWaypointMobility final : public MobilityModel {
 public:
  explicit RandomWaypointMobility(WaypointConfig config);

  std::string name() const override { return "random-waypoint"; }
  std::size_t num_devices() const override { return cfg_.num_devices; }
  std::size_t num_edges() const override { return cfg_.num_edges; }
  const std::vector<std::size_t>& assignment() const override {
    return assignment_;
  }
  void advance() override;
  const std::vector<std::size_t>* movers() const override { return &movers_; }
  void reset() override;
  std::size_t step() const override { return step_; }

  const WaypointConfig& config() const noexcept { return cfg_; }
  Point device_position(std::size_t device) const {
    return positions_.at(device);
  }
  Point edge_position(std::size_t edge) const { return edges_.at(edge); }

  /// Nearest edge to a point (ties broken by lower index).
  std::size_t nearest_edge(Point p) const;

 private:
  struct DeviceState {
    Point position;
    Point waypoint;
    double speed = 0.0;
    bool paused = false;
  };

  void init_states();
  void recompute_assignment();

  WaypointConfig cfg_;
  std::vector<Point> edges_;
  std::vector<DeviceState> states_;
  std::vector<Point> positions_;
  std::vector<std::size_t> assignment_;
  std::vector<std::size_t> movers_;
  parallel::StreamRng streams_;
  std::size_t step_ = 0;
};

/// Binary-search for the speed multiplier whose empirical global mobility
/// over `probe_steps` steps is within `tolerance` of `target_p`; returns the
/// calibrated config.
WaypointConfig calibrate_speed(WaypointConfig config, double target_p,
                               std::size_t probe_steps = 200,
                               double tolerance = 0.02);

}  // namespace middlefl::mobility
