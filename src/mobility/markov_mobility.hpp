// Markov edge-transition mobility (the paper's model in §3.2).
//
// At each time step, device m jumps to a uniformly random *other* edge with
// probability P_m and stays put otherwise. The global mobility P is the
// mean of P_m over devices — exactly the quantity swept in Fig. 7. The
// transition draw is keyed on (seed, device, step) so runs are reproducible
// and independent of evaluation order — which also makes advance() free to
// shard over a thread pool in fixed device ranges: each shard walks its own
// slice of the SoA (keys, probabilities, assignment) arrays and emits a
// local mover list, concatenated in shard order into one ascending delta.
#pragma once

#include "mobility/mobility_model.hpp"
#include "parallel/rng.hpp"

namespace middlefl::mobility {

/// Where a moving device goes.
///
/// Real mobility has locality: users commute between nearby cells and keep
/// returning to a home region, so the class/location correlation that makes
/// edge data Non-IID persists over time. kUniform teleports movers to any
/// other edge and therefore mixes edge populations into IID within a few
/// steps (useful as an ablation); kRing moves to an adjacent edge on a ring
/// of edges; kHomeRing moves to an adjacent edge but returns the device to
/// its HOME edge with probability `home_bias` (commuter pattern, default
/// for the paper-style experiments).
enum class MoveTopology { kUniform, kRing, kHomeRing };

/// "uniform" | "ring" | "home-ring".
std::string to_string(MoveTopology topology);
/// Inverse of to_string; also accepts the legacy "home_ring" spelling.
/// Throws std::invalid_argument for anything else.
MoveTopology parse_topology(const std::string& name);

class MarkovMobility final : public MobilityModel {
 public:
  /// Uniform move probability P for all devices.
  MarkovMobility(std::vector<std::size_t> initial_assignment,
                 std::size_t num_edges, double move_probability,
                 std::uint64_t seed);

  /// Heterogeneous per-device probabilities P_m (global P is their mean).
  /// An empty vector means P_m = 0 for every device (no movement).
  MarkovMobility(std::vector<std::size_t> initial_assignment,
                 std::size_t num_edges,
                 std::vector<double> move_probabilities, std::uint64_t seed);

  /// Selects the destination distribution for moves. `home_bias` only
  /// applies to kHomeRing; the home edge is the initial assignment.
  void set_topology(MoveTopology topology, double home_bias = 0.5);
  MoveTopology topology() const noexcept { return topology_; }

  std::string name() const override { return "markov"; }
  std::size_t num_devices() const override { return current_.size(); }
  std::size_t num_edges() const override { return num_edges_; }
  const std::vector<std::size_t>& assignment() const override {
    return current_;
  }
  void advance() override;
  const std::vector<std::size_t>* movers() const override { return &movers_; }
  void set_pool(parallel::ThreadPool* pool) override { pool_ = pool; }
  void reset() override;
  std::size_t step() const override { return step_; }

  /// Mean of P_m over devices (cached; probabilities are fixed after
  /// construction, so there is nothing to invalidate — a future mutator
  /// must call finalize_probabilities()).
  double global_mobility() const noexcept { return global_mobility_; }

 private:
  /// Normalizes move_prob_ (empty -> all-zero, fixing the latent OOB read
  /// in advance()), rebuilds the cached per-device stream keys, and
  /// recomputes the cached global mobility.
  void finalize_probabilities();
  /// Serial transition loop over devices [lo, hi), appending movers in
  /// ascending id order. Thread-safe across disjoint ranges: each device
  /// draws from its own (device, step) stream and writes only its own
  /// current_ slot.
  void advance_range(std::size_t lo, std::size_t hi,
                     std::vector<std::size_t>& movers);
  std::size_t shard_count(std::size_t devices) const;

  std::vector<std::size_t> initial_;
  std::vector<std::size_t> current_;
  std::size_t num_edges_;
  std::vector<double> move_prob_;
  parallel::StreamRng streams_;
  /// hash_combine(seed, device), the step-independent half of each
  /// device's stream key — advance() finishes it with one combine.
  std::vector<std::uint64_t> device_keys_;
  std::vector<std::size_t> movers_;
  std::vector<std::vector<std::size_t>> shard_movers_;
  parallel::ThreadPool* pool_ = nullptr;
  double global_mobility_ = 0.0;
  std::size_t step_ = 0;
  MoveTopology topology_ = MoveTopology::kUniform;
  double home_bias_ = 0.5;
};

}  // namespace middlefl::mobility
