#include "mobility/trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace middlefl::mobility {

Trace::Trace(std::size_t num_devices, std::size_t num_edges)
    : num_devices_(num_devices), num_edges_(num_edges) {
  if (num_devices_ == 0 || num_edges_ == 0) {
    throw std::invalid_argument("Trace: devices and edges must be positive");
  }
}

void Trace::append(const std::vector<std::size_t>& assignment) {
  if (assignment.size() != num_devices_) {
    throw std::invalid_argument("Trace::append: expected " +
                                std::to_string(num_devices_) +
                                " devices, got " +
                                std::to_string(assignment.size()));
  }
  for (std::size_t e : assignment) {
    if (e >= num_edges_) {
      throw std::out_of_range("Trace::append: edge " + std::to_string(e) +
                              " out of range");
    }
  }
  table_.insert(table_.end(), assignment.begin(), assignment.end());
}

std::size_t Trace::edge_at(std::size_t step, std::size_t device) const {
  if (step >= num_steps() || device >= num_devices_) {
    throw std::out_of_range("Trace::edge_at: (step, device) out of range");
  }
  return table_[step * num_devices_ + device];
}

void Trace::save(std::ostream& out) const {
  out << "# middlefl-trace v1 devices=" << num_devices_
      << " edges=" << num_edges_ << " steps=" << num_steps() << "\n";
  for (std::size_t t = 0; t < num_steps(); ++t) {
    for (std::size_t m = 0; m < num_devices_; ++m) {
      out << t << ' ' << m << ' ' << table_[t * num_devices_ + m] << "\n";
    }
  }
}

void Trace::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Trace::save_file: cannot open " + path);
  save(out);
}

Trace Trace::load(std::istream& in) {
  std::string header;
  if (!std::getline(in, header)) {
    throw std::runtime_error("Trace::load: empty input");
  }
  std::size_t devices = 0, edges = 0, steps = 0;
  {
    std::istringstream hs(header);
    std::string token;
    while (hs >> token) {
      if (token.rfind("devices=", 0) == 0) devices = std::stoul(token.substr(8));
      if (token.rfind("edges=", 0) == 0) edges = std::stoul(token.substr(6));
      if (token.rfind("steps=", 0) == 0) steps = std::stoul(token.substr(6));
    }
  }
  if (devices == 0 || edges == 0) {
    throw std::runtime_error("Trace::load: malformed header '" + header + "'");
  }
  Trace trace(devices, edges);
  trace.table_.assign(steps * devices, 0);
  std::size_t records = 0;
  std::size_t step = 0, device = 0, edge = 0;
  while (in >> step >> device >> edge) {
    if (step >= steps || device >= devices || edge >= edges) {
      throw std::runtime_error("Trace::load: record out of range");
    }
    trace.table_[step * devices + device] = edge;
    ++records;
  }
  if (records != steps * devices) {
    throw std::runtime_error("Trace::load: expected " +
                             std::to_string(steps * devices) +
                             " records, got " + std::to_string(records));
  }
  return trace;
}

Trace Trace::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Trace::load_file: cannot open " + path);
  return load(in);
}

Trace record_trace(MobilityModel& model, std::size_t steps) {
  model.reset();
  Trace trace(model.num_devices(), model.num_edges());
  trace.append(model.assignment());
  for (std::size_t t = 0; t < steps; ++t) {
    model.advance();
    trace.append(model.assignment());
  }
  model.reset();
  return trace;
}

TraceMobility::TraceMobility(Trace trace) : trace_(std::move(trace)) {
  if (trace_.num_steps() == 0) {
    throw std::invalid_argument("TraceMobility: empty trace");
  }
  load_step(0);
}

void TraceMobility::load_step(std::size_t step) {
  const std::size_t bounded = std::min(step, trace_.num_steps() - 1);
  const bool diff = current_.size() == trace_.num_devices();
  movers_.clear();
  current_.resize(trace_.num_devices());
  for (std::size_t m = 0; m < current_.size(); ++m) {
    const std::size_t edge = trace_.edge_at(bounded, m);
    if (diff && current_[m] != edge) movers_.push_back(m);
    current_[m] = edge;
  }
}

void TraceMobility::advance() {
  ++step_;
  load_step(step_);
}

void TraceMobility::reset() {
  step_ = 0;
  load_step(0);
  // Rewinding is not an advance: the delta computed against the pre-reset
  // assignment must not leak into the first step's membership patch.
  movers_.clear();
}

}  // namespace middlefl::mobility
