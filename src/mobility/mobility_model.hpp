// Device-to-edge association over time.
//
// The paper needs exactly one thing from a mobility substrate: the set
// M_t_n of devices connected to each edge at every time step, with devices
// moving across edges at an expected global rate P ("our solution is
// orthogonal to the classic mobility models"). The interface exposes the
// per-step assignment; implementations are the Markov edge-transition model
// (direct control of P), a 2-D random-waypoint model with nearest-edge
// association (geographic realism; replaces the ONE simulator traces), and
// trace replay.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace middlefl::parallel {
class ThreadPool;
}

namespace middlefl::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  virtual std::string name() const = 0;
  virtual std::size_t num_devices() const = 0;
  virtual std::size_t num_edges() const = 0;

  /// Edge of each device at the current time step. Assignments partition
  /// the device set (paper Eq. 3): every device is connected to exactly one
  /// edge.
  virtual const std::vector<std::size_t>& assignment() const = 0;

  /// Advances one time step, updating the assignment.
  virtual void advance() = 0;

  /// Devices whose edge changed in the last advance(), ascending by id —
  /// the mover delta that lets callers patch per-edge membership instead
  /// of rescanning the whole fleet. nullptr when the model does not track
  /// movers (callers must fall back to a full scan). The list is empty
  /// after reset() / before the first advance(), and valid until the next
  /// advance() or reset(). Invariant (pinned by mobility_test): the list
  /// equals moved_devices(assignment before, assignment after).
  virtual const std::vector<std::size_t>* movers() const { return nullptr; }

  /// Non-owning worker pool for models whose advance() can shard across
  /// devices (per-device draws keyed on (device, step) make evaluation
  /// order free). nullptr reverts to serial. Sharding never changes the
  /// assignment or the mover list.
  virtual void set_pool(parallel::ThreadPool* /*pool*/) {}

  /// Restores the initial assignment (step 0).
  virtual void reset() = 0;

  /// Time steps advanced since construction/reset.
  virtual std::size_t step() const = 0;
};

/// Devices that changed edge between the previous and current assignment.
std::vector<std::size_t> moved_devices(
    const std::vector<std::size_t>& previous,
    const std::vector<std::size_t>& current);

/// Runs `steps` transitions on a copy-free dry run and returns the empirical
/// per-device-per-step cross-edge move rate (the global mobility P). Resets
/// the model afterwards.
double measure_mobility(MobilityModel& model, std::size_t steps);

}  // namespace middlefl::mobility
