// Mobility trace record/replay.
//
// A trace is the full (step, device) -> edge table of a mobility run, in a
// line-oriented text format close to the ONE simulator's movement reports:
//
//   # middlefl-trace v1 devices=<M> edges=<N> steps=<T>
//   <step> <device> <edge>
//
// Recording lets expensive waypoint runs (or, in a real deployment,
// measured association logs) be replayed bit-exactly into the simulator.
#pragma once

#include <iosfwd>
#include <string>

#include "mobility/mobility_model.hpp"

namespace middlefl::mobility {

class Trace {
 public:
  Trace() = default;
  Trace(std::size_t num_devices, std::size_t num_edges);

  std::size_t num_devices() const noexcept { return num_devices_; }
  std::size_t num_edges() const noexcept { return num_edges_; }
  /// Number of recorded steps, including step 0 (the initial assignment).
  std::size_t num_steps() const noexcept {
    return num_devices_ == 0 ? 0 : table_.size() / num_devices_;
  }

  /// Appends one full assignment snapshot (must cover every device).
  void append(const std::vector<std::size_t>& assignment);

  /// Edge of `device` at `step`.
  std::size_t edge_at(std::size_t step, std::size_t device) const;

  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  static Trace load(std::istream& in);
  static Trace load_file(const std::string& path);

 private:
  std::size_t num_devices_ = 0;
  std::size_t num_edges_ = 0;
  std::vector<std::size_t> table_;  // step-major: table_[step*M + device]
};

/// Runs `model` for `steps` transitions and captures every assignment
/// (steps+1 snapshots including the initial one). Resets the model first.
Trace record_trace(MobilityModel& model, std::size_t steps);

/// MobilityModel that replays a Trace; advancing past the end holds the
/// last assignment (devices stop moving).
class TraceMobility final : public MobilityModel {
 public:
  explicit TraceMobility(Trace trace);

  std::string name() const override { return "trace-replay"; }
  std::size_t num_devices() const override { return trace_.num_devices(); }
  std::size_t num_edges() const override { return trace_.num_edges(); }
  const std::vector<std::size_t>& assignment() const override {
    return current_;
  }
  void advance() override;
  const std::vector<std::size_t>* movers() const override { return &movers_; }
  void reset() override;
  std::size_t step() const override { return step_; }

 private:
  void load_step(std::size_t step);

  Trace trace_;
  std::vector<std::size_t> current_;
  std::vector<std::size_t> movers_;
  std::size_t step_ = 0;
};

}  // namespace middlefl::mobility
