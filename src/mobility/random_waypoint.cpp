#include "mobility/random_waypoint.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace middlefl::mobility {

RandomWaypointMobility::RandomWaypointMobility(WaypointConfig config)
    : cfg_(config), streams_(config.seed) {
  if (cfg_.num_devices == 0 || cfg_.num_edges == 0) {
    throw std::invalid_argument("RandomWaypoint: devices and edges must be positive");
  }
  if (cfg_.width <= 0.0 || cfg_.height <= 0.0) {
    throw std::invalid_argument("RandomWaypoint: plane must have positive area");
  }
  if (cfg_.speed_min < 0.0 || cfg_.speed_max < cfg_.speed_min) {
    throw std::invalid_argument("RandomWaypoint: need 0 <= speed_min <= speed_max");
  }
  if (cfg_.pause_probability < 0.0 || cfg_.pause_probability > 1.0) {
    throw std::invalid_argument("RandomWaypoint: pause probability in [0, 1]");
  }

  // Edges on a near-square grid covering the plane, centered in their cells
  // (a Voronoi partition of the plane into rectangular regions).
  const auto cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(cfg_.num_edges))));
  const std::size_t rows = (cfg_.num_edges + cols - 1) / cols;
  edges_.reserve(cfg_.num_edges);
  for (std::size_t e = 0; e < cfg_.num_edges; ++e) {
    const std::size_t r = e / cols;
    const std::size_t c = e % cols;
    edges_.push_back(Point{
        (static_cast<double>(c) + 0.5) * cfg_.width / static_cast<double>(cols),
        (static_cast<double>(r) + 0.5) * cfg_.height /
            static_cast<double>(rows),
    });
  }

  init_states();
}

void RandomWaypointMobility::init_states() {
  states_.assign(cfg_.num_devices, DeviceState{});
  positions_.assign(cfg_.num_devices, Point{});
  for (std::size_t m = 0; m < cfg_.num_devices; ++m) {
    auto rng = streams_.stream(/*a=*/0x1717, m);
    DeviceState& s = states_[m];
    s.position = Point{rng.uniform() * cfg_.width, rng.uniform() * cfg_.height};
    s.waypoint = Point{rng.uniform() * cfg_.width, rng.uniform() * cfg_.height};
    s.speed = cfg_.speed_min +
              rng.uniform() * (cfg_.speed_max - cfg_.speed_min);
    positions_[m] = s.position;
  }
  recompute_assignment();
}

std::size_t RandomWaypointMobility::nearest_edge(Point p) const {
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    const double dx = p.x - edges_[e].x;
    const double dy = p.y - edges_[e].y;
    const double d2 = dx * dx + dy * dy;
    if (d2 < best_d2) {
      best_d2 = d2;
      best = e;
    }
  }
  return best;
}

void RandomWaypointMobility::recompute_assignment() {
  // Devices move every step but only association flips count as movers:
  // diff the fresh nearest-edge result against the previous assignment
  // while writing it (ascending id order by construction).
  const bool diff = assignment_.size() == cfg_.num_devices;
  movers_.clear();
  assignment_.resize(cfg_.num_devices);
  for (std::size_t m = 0; m < cfg_.num_devices; ++m) {
    const std::size_t edge = nearest_edge(positions_[m]);
    if (diff && assignment_[m] != edge) movers_.push_back(m);
    assignment_[m] = edge;
  }
}

void RandomWaypointMobility::advance() {
  ++step_;
  for (std::size_t m = 0; m < cfg_.num_devices; ++m) {
    auto rng = streams_.stream(m, step_);
    DeviceState& s = states_[m];
    if (s.paused) {
      // Pause lasts one step at a time; re-draw each step.
      if (rng.uniform() >= cfg_.pause_probability) s.paused = false;
      positions_[m] = s.position;
      continue;
    }
    const double dx = s.waypoint.x - s.position.x;
    const double dy = s.waypoint.y - s.position.y;
    const double dist = std::hypot(dx, dy);
    if (dist <= s.speed) {
      // Arrived: land on the waypoint and pick the next leg.
      s.position = s.waypoint;
      s.waypoint =
          Point{rng.uniform() * cfg_.width, rng.uniform() * cfg_.height};
      s.speed = cfg_.speed_min +
                rng.uniform() * (cfg_.speed_max - cfg_.speed_min);
      s.paused = rng.uniform() < cfg_.pause_probability;
    } else {
      s.position.x += s.speed * dx / dist;
      s.position.y += s.speed * dy / dist;
    }
    positions_[m] = s.position;
  }
  recompute_assignment();
}

void RandomWaypointMobility::reset() {
  step_ = 0;
  init_states();
  // init_states() diffed against the pre-reset assignment; step 0 has no
  // "last advance" so the mover list must be empty.
  movers_.clear();
}

WaypointConfig calibrate_speed(WaypointConfig config, double target_p,
                               std::size_t probe_steps, double tolerance) {
  if (target_p <= 0.0 || target_p > 1.0) {
    throw std::invalid_argument("calibrate_speed: target P must be in (0, 1]");
  }
  // Scale both speed bounds by a common multiplier; empirical P grows
  // monotonically with it until saturation.
  double lo = 1e-3;
  double hi = 1.0;
  const double base_min = config.speed_min;
  const double base_max = config.speed_max;
  const auto measure = [&](double mult) {
    WaypointConfig probe = config;
    probe.speed_min = base_min * mult;
    probe.speed_max = base_max * mult;
    RandomWaypointMobility model(probe);
    return measure_mobility(model, probe_steps);
  };
  // Grow hi until we bracket the target (or give up at an extreme speed).
  while (measure(hi) < target_p && hi < 1e4) hi *= 2.0;
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double p = measure(mid);
    if (std::abs(p - target_p) <= tolerance) {
      lo = hi = mid;
      break;
    }
    (p < target_p ? lo : hi) = mid;
  }
  const double mult = 0.5 * (lo + hi);
  config.speed_min = base_min * mult;
  config.speed_max = base_max * mult;
  return config;
}

}  // namespace middlefl::mobility
