#include "mobility/mobility_model.hpp"

#include <stdexcept>

namespace middlefl::mobility {

std::vector<std::size_t> moved_devices(
    const std::vector<std::size_t>& previous,
    const std::vector<std::size_t>& current) {
  if (previous.size() != current.size()) {
    throw std::invalid_argument("moved_devices: assignment size mismatch");
  }
  std::vector<std::size_t> moved;
  for (std::size_t m = 0; m < current.size(); ++m) {
    if (previous[m] != current[m]) moved.push_back(m);
  }
  return moved;
}

double measure_mobility(MobilityModel& model, std::size_t steps) {
  if (steps == 0 || model.num_devices() == 0) return 0.0;
  model.reset();
  std::size_t moves = 0;
  std::vector<std::size_t> previous = model.assignment();
  for (std::size_t t = 0; t < steps; ++t) {
    model.advance();
    const auto& current = model.assignment();
    moves += moved_devices(previous, current).size();
    previous = current;
  }
  model.reset();
  return static_cast<double>(moves) /
         static_cast<double>(steps * model.num_devices());
}

}  // namespace middlefl::mobility
