#include "mobility/markov_mobility.hpp"

#include <numeric>
#include <stdexcept>

namespace middlefl::mobility {

std::string to_string(MoveTopology topology) {
  switch (topology) {
    case MoveTopology::kUniform: return "uniform";
    case MoveTopology::kRing: return "ring";
    case MoveTopology::kHomeRing: return "home-ring";
  }
  return "?";
}

MoveTopology parse_topology(const std::string& name) {
  if (name == "uniform") return MoveTopology::kUniform;
  if (name == "ring") return MoveTopology::kRing;
  if (name == "home-ring" || name == "home_ring" || name == "home") {
    return MoveTopology::kHomeRing;
  }
  throw std::invalid_argument("unknown topology '" + name +
                              "' (uniform|ring|home-ring)");
}

MarkovMobility::MarkovMobility(std::vector<std::size_t> initial_assignment,
                               std::size_t num_edges, double move_probability,
                               std::uint64_t seed)
    : MarkovMobility(std::move(initial_assignment), num_edges,
                     std::vector<double>{}, seed) {
  if (move_probability < 0.0 || move_probability > 1.0) {
    throw std::invalid_argument("MarkovMobility: P must be in [0, 1]");
  }
  move_prob_.assign(current_.size(), move_probability);
}

MarkovMobility::MarkovMobility(std::vector<std::size_t> initial_assignment,
                               std::size_t num_edges,
                               std::vector<double> move_probabilities,
                               std::uint64_t seed)
    : initial_(std::move(initial_assignment)),
      current_(initial_),
      num_edges_(num_edges),
      move_prob_(std::move(move_probabilities)),
      streams_(seed) {
  if (num_edges_ == 0) {
    throw std::invalid_argument("MarkovMobility: need at least one edge");
  }
  for (std::size_t e : initial_) {
    if (e >= num_edges_) {
      throw std::out_of_range("MarkovMobility: initial edge " +
                              std::to_string(e) + " out of range");
    }
  }
  if (!move_prob_.empty() && move_prob_.size() != initial_.size()) {
    throw std::invalid_argument(
        "MarkovMobility: per-device probability count mismatch");
  }
  for (double p : move_prob_) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument("MarkovMobility: P_m must be in [0, 1]");
    }
  }
}

void MarkovMobility::set_topology(MoveTopology topology, double home_bias) {
  if (home_bias < 0.0 || home_bias > 1.0) {
    throw std::invalid_argument("MarkovMobility: home_bias must be in [0, 1]");
  }
  topology_ = topology;
  home_bias_ = home_bias;
}

void MarkovMobility::advance() {
  ++step_;
  if (num_edges_ == 1) return;  // nowhere to go
  for (std::size_t m = 0; m < current_.size(); ++m) {
    auto rng = streams_.stream(m, step_);
    if (rng.uniform() >= move_prob_[m]) continue;
    switch (topology_) {
      case MoveTopology::kUniform: {
        // Teleport to a uniformly random other edge.
        std::size_t target = rng.bounded(num_edges_ - 1);
        if (target >= current_[m]) ++target;
        current_[m] = target;
        break;
      }
      case MoveTopology::kRing: {
        const bool clockwise = rng.uniform() < 0.5;
        current_[m] = clockwise ? (current_[m] + 1) % num_edges_
                                : (current_[m] + num_edges_ - 1) % num_edges_;
        break;
      }
      case MoveTopology::kHomeRing: {
        if (current_[m] != initial_[m] && rng.uniform() < home_bias_) {
          current_[m] = initial_[m];  // commuter returns home
        } else {
          const bool clockwise = rng.uniform() < 0.5;
          current_[m] = clockwise
                            ? (current_[m] + 1) % num_edges_
                            : (current_[m] + num_edges_ - 1) % num_edges_;
        }
        break;
      }
    }
  }
}

void MarkovMobility::reset() {
  current_ = initial_;
  step_ = 0;
}

double MarkovMobility::global_mobility() const noexcept {
  if (move_prob_.empty()) return 0.0;
  const double sum =
      std::accumulate(move_prob_.begin(), move_prob_.end(), 0.0);
  return sum / static_cast<double>(move_prob_.size());
}

}  // namespace middlefl::mobility
