#include "mobility/markov_mobility.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace middlefl::mobility {

std::string to_string(MoveTopology topology) {
  switch (topology) {
    case MoveTopology::kUniform: return "uniform";
    case MoveTopology::kRing: return "ring";
    case MoveTopology::kHomeRing: return "home-ring";
  }
  return "?";
}

MoveTopology parse_topology(const std::string& name) {
  if (name == "uniform") return MoveTopology::kUniform;
  if (name == "ring") return MoveTopology::kRing;
  if (name == "home-ring" || name == "home_ring" || name == "home") {
    return MoveTopology::kHomeRing;
  }
  throw std::invalid_argument("unknown topology '" + name +
                              "' (uniform|ring|home-ring)");
}

MarkovMobility::MarkovMobility(std::vector<std::size_t> initial_assignment,
                               std::size_t num_edges, double move_probability,
                               std::uint64_t seed)
    : MarkovMobility(std::move(initial_assignment), num_edges,
                     std::vector<double>{}, seed) {
  if (move_probability < 0.0 || move_probability > 1.0) {
    throw std::invalid_argument("MarkovMobility: P must be in [0, 1]");
  }
  move_prob_.assign(current_.size(), move_probability);
  finalize_probabilities();
}

MarkovMobility::MarkovMobility(std::vector<std::size_t> initial_assignment,
                               std::size_t num_edges,
                               std::vector<double> move_probabilities,
                               std::uint64_t seed)
    : initial_(std::move(initial_assignment)),
      current_(initial_),
      num_edges_(num_edges),
      move_prob_(std::move(move_probabilities)),
      streams_(seed) {
  if (num_edges_ == 0) {
    throw std::invalid_argument("MarkovMobility: need at least one edge");
  }
  for (std::size_t e : initial_) {
    if (e >= num_edges_) {
      throw std::out_of_range("MarkovMobility: initial edge " +
                              std::to_string(e) + " out of range");
    }
  }
  if (!move_prob_.empty() && move_prob_.size() != initial_.size()) {
    throw std::invalid_argument(
        "MarkovMobility: per-device probability count mismatch");
  }
  for (double p : move_prob_) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument("MarkovMobility: P_m must be in [0, 1]");
    }
  }
  finalize_probabilities();
}

void MarkovMobility::finalize_probabilities() {
  // An empty vector used to pass validation yet advance() indexed
  // move_prob_[m] unconditionally — normalize to explicit P = 0 so the
  // hot loop never has to branch on the degenerate shape.
  if (move_prob_.empty()) move_prob_.assign(initial_.size(), 0.0);
  if (device_keys_.size() != initial_.size()) {
    device_keys_.resize(initial_.size());
    for (std::size_t m = 0; m < device_keys_.size(); ++m) {
      device_keys_[m] = parallel::hash_combine(streams_.root_seed(), m);
    }
  }
  global_mobility_ =
      move_prob_.empty()
          ? 0.0
          : std::accumulate(move_prob_.begin(), move_prob_.end(), 0.0) /
                static_cast<double>(move_prob_.size());
}

void MarkovMobility::set_topology(MoveTopology topology, double home_bias) {
  if (home_bias < 0.0 || home_bias > 1.0) {
    throw std::invalid_argument("MarkovMobility: home_bias must be in [0, 1]");
  }
  topology_ = topology;
  home_bias_ = home_bias;
}

void MarkovMobility::advance_range(std::size_t lo, std::size_t hi,
                                   std::vector<std::size_t>& movers) {
  for (std::size_t m = lo; m < hi; ++m) {
    const double p = move_prob_[m];
    // uniform() lands in [0, 1), so P = 0 never passes the gate — skip
    // the draw entirely. The skipped stream is private to (m, step) and
    // consumed nowhere else, so no other device's draws shift.
    if (p <= 0.0) continue;
    parallel::Xoshiro256 rng(parallel::hash_combine(device_keys_[m], step_));
    if (rng.uniform() >= p) continue;
    const std::size_t before = current_[m];
    switch (topology_) {
      case MoveTopology::kUniform: {
        // Teleport to a uniformly random other edge.
        std::size_t target = rng.bounded(num_edges_ - 1);
        if (target >= current_[m]) ++target;
        current_[m] = target;
        break;
      }
      case MoveTopology::kRing: {
        const bool clockwise = rng.uniform() < 0.5;
        current_[m] = clockwise ? (current_[m] + 1) % num_edges_
                                : (current_[m] + num_edges_ - 1) % num_edges_;
        break;
      }
      case MoveTopology::kHomeRing: {
        if (current_[m] != initial_[m] && rng.uniform() < home_bias_) {
          current_[m] = initial_[m];  // commuter returns home
        } else {
          const bool clockwise = rng.uniform() < 0.5;
          current_[m] = clockwise
                            ? (current_[m] + 1) % num_edges_
                            : (current_[m] + num_edges_ - 1) % num_edges_;
        }
        break;
      }
    }
    if (current_[m] != before) movers.push_back(m);
  }
}

std::size_t MarkovMobility::shard_count(std::size_t devices) const {
  // Boundaries depend only on the fleet size — never on the pool — so the
  // shard-local mover lists concatenate into the same ascending order at
  // any worker count. The grain keeps dispatch overhead off small fleets.
  constexpr std::size_t kGrain = 16384;
  const std::size_t by_grain = (devices + kGrain - 1) / kGrain;
  return std::clamp<std::size_t>(by_grain, 1, 64);
}

void MarkovMobility::advance() {
  ++step_;
  movers_.clear();
  if (num_edges_ == 1) return;  // nowhere to go
  const std::size_t devices = current_.size();
  const std::size_t shards = shard_count(devices);
  if (pool_ == nullptr || pool_->size() <= 1 || shards <= 1 ||
      parallel::ThreadPool::in_worker()) {
    advance_range(0, devices, movers_);
    return;
  }
  const std::size_t per = (devices + shards - 1) / shards;
  shard_movers_.resize(shards);
  parallel::parallel_for(*pool_, 0, shards, [&](std::size_t s) {
    auto& local = shard_movers_[s];
    local.clear();
    const std::size_t lo = s * per;
    advance_range(lo, std::min(devices, lo + per), local);
  });
  for (const auto& local : shard_movers_) {
    movers_.insert(movers_.end(), local.begin(), local.end());
  }
}

void MarkovMobility::reset() {
  current_ = initial_;
  movers_.clear();
  step_ = 0;
}

}  // namespace middlefl::mobility
