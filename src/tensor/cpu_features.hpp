// Runtime CPU capability detection for the GEMM micro-kernel dispatch.
//
// The packed GEMM in blas.cpp ships three code paths compiled into every
// binary — scalar, AVX2+FMA and AVX-512F — and picks one at runtime from
// cpuid, so a portable (non-MIDDLEFL_NATIVE) Release build still runs the
// widest kernel the machine supports. All three paths compute every C
// element with the same fixed K-accumulation tree, so which one runs never
// changes a single output bit; the choice is pure speed.
//
// Test hooks: force_isa() pins the dispatch to a (supported) level and the
// MIDDLEFL_ISA environment variable ("scalar" / "avx2" / "avx512") does the
// same without recompiling — both clamp to what the host actually has.
#pragma once

#include <optional>
#include <string>

namespace middlefl::tensor {

/// Instruction-set tiers of the packed GEMM kernels, widest last.
enum class IsaLevel : int {
  kScalar = 0,  // fixed-lane C++ (still autovectorizable by the compiler)
  kAvx2 = 1,    // 8-lane __m256 micro-kernel (requires AVX2 + FMA)
  kAvx512 = 2,  // 16-lane __m512 micro-kernel (requires AVX-512F)
};

const char* to_string(IsaLevel level) noexcept;

/// Parses "scalar" / "avx2" / "avx512"; nullopt for anything else.
std::optional<IsaLevel> isa_from_string(const std::string& name) noexcept;

/// The widest level this CPU supports (cpuid probe, cached after the first
/// call). Non-x86 builds always report kScalar.
IsaLevel detected_isa() noexcept;

/// The level the GEMM dispatch will use: the forced level if force_isa()
/// was called, else the MIDDLEFL_ISA override, else detected_isa().
/// Overrides are clamped to detected_isa() — requesting an unsupported
/// level can never select a kernel the CPU would fault on.
IsaLevel active_isa() noexcept;

/// Pins the dispatch to min(level, detected_isa()) and returns the level
/// actually applied. Used by the dispatch-parity tests to run the same
/// inputs through every supported kernel.
IsaLevel force_isa(IsaLevel level) noexcept;

/// Clears a force_isa() pin (environment override applies again).
void clear_forced_isa() noexcept;

}  // namespace middlefl::tensor
