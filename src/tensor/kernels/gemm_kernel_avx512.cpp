// AVX-512F instantiation of the packed GEMM: 8x32 micro-tile (16 zmm
// accumulators out of 32). Compiled with -mavx512f -ffp-contract=off on
// x86 builds; falls back to the scalar geometry when the toolchain cannot
// target AVX-512 so the symbol always links (the runtime dispatch never
// selects it on a CPU without AVX-512F).
#include "tensor/kernels/gemm_kernel_impl.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>

namespace middlefl::tensor::detail {
namespace {

struct ArchAvx512 {
  using Vec = __m512;
  static constexpr std::size_t kW = 16;
  static constexpr std::size_t kMR = 8;
  static constexpr std::size_t kNV = 2;  // NR = 32

  static Vec zero() noexcept { return _mm512_setzero_ps(); }
  static Vec load(const float* p) noexcept { return _mm512_loadu_ps(p); }
  static void store(float* p, Vec v) noexcept { _mm512_storeu_ps(p, v); }
  static Vec broadcast(float v) noexcept { return _mm512_set1_ps(v); }
  static Vec add(Vec a, Vec b) noexcept { return _mm512_add_ps(a, b); }
  static Vec mul(Vec a, Vec b) noexcept { return _mm512_mul_ps(a, b); }
  static Vec madd(Vec a, Vec b, Vec c) noexcept {
#if defined(MIDDLEFL_GEMM_FMA)
    return _mm512_fmadd_ps(a, b, c);
#else
    return _mm512_add_ps(_mm512_mul_ps(a, b), c);
#endif
  }
  static Vec relu(Vec v) noexcept {
    // Masked move keeps exactly the lanes where v > 0 (ordered compare:
    // NaN lanes zero out), matching the scalar `v > 0 ? v : 0`.
    const __mmask16 pos =
        _mm512_cmp_ps_mask(v, _mm512_setzero_ps(), _CMP_GT_OQ);
    return _mm512_maskz_mov_ps(pos, v);
  }
};

}  // namespace

const PackedKernels& avx512_kernels() noexcept {
  return PackedGemm<ArchAvx512>::table();
}

}  // namespace middlefl::tensor::detail

#else  // toolchain cannot emit AVX-512: link-compatible scalar fallback

namespace middlefl::tensor::detail {

const PackedKernels& avx512_kernels() noexcept {
  return PackedGemm<ArchScalar>::table();
}

}  // namespace middlefl::tensor::detail

#endif
