// AVX2+FMA instantiation of the packed GEMM: 6x16 micro-tile (12 ymm
// accumulators + 2 B vectors + 1 broadcast within the 16-register file).
// Compiled with -mavx2 -mfma -ffp-contract=off on x86 builds; when the
// toolchain cannot target AVX2 this TU falls back to the scalar geometry
// so the symbol always links (the runtime dispatch never selects it on a
// CPU without AVX2, so the fallback body is effectively dead code there).
#include "tensor/kernels/gemm_kernel_impl.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>

namespace middlefl::tensor::detail {
namespace {

struct ArchAvx2 {
  using Vec = __m256;
  static constexpr std::size_t kW = 8;
  static constexpr std::size_t kMR = 6;
  static constexpr std::size_t kNV = 2;  // NR = 16

  static Vec zero() noexcept { return _mm256_setzero_ps(); }
  static Vec load(const float* p) noexcept { return _mm256_loadu_ps(p); }
  static void store(float* p, Vec v) noexcept { _mm256_storeu_ps(p, v); }
  static Vec broadcast(float v) noexcept { return _mm256_set1_ps(v); }
  static Vec add(Vec a, Vec b) noexcept { return _mm256_add_ps(a, b); }
  static Vec mul(Vec a, Vec b) noexcept { return _mm256_mul_ps(a, b); }
  static Vec madd(Vec a, Vec b, Vec c) noexcept {
#if defined(MIDDLEFL_GEMM_FMA)
    return _mm256_fmadd_ps(a, b, c);
#else
    return _mm256_add_ps(_mm256_mul_ps(a, b), c);
#endif
  }
  static Vec relu(Vec v) noexcept {
    // compare-and-select, not max: NaN and -0.0 must map to +0.0 exactly
    // like the scalar `v > 0 ? v : 0`.
    return _mm256_and_ps(_mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_GT_OQ),
                         v);
  }
};

}  // namespace

const PackedKernels& avx2_kernels() noexcept {
  return PackedGemm<ArchAvx2>::table();
}

}  // namespace middlefl::tensor::detail

#else  // toolchain cannot emit AVX2: link-compatible scalar fallback

namespace middlefl::tensor::detail {

const PackedKernels& avx2_kernels() noexcept {
  return PackedGemm<ArchScalar>::table();
}

}  // namespace middlefl::tensor::detail

#endif
