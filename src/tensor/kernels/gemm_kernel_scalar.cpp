// Scalar instantiation of the packed GEMM — the dispatch floor that every
// platform can run. Compiled with -ffp-contract=off like its SIMD
// siblings, so per-element rounding follows the shared contract exactly
// (the compiler may still autovectorize the fixed-lane loops; that changes
// instruction selection, never per-element arithmetic order).
#include "tensor/kernels/gemm_kernel_impl.hpp"

namespace middlefl::tensor::detail {

const PackedKernels& scalar_kernels() noexcept {
  return PackedGemm<ArchScalar>::table();
}

}  // namespace middlefl::tensor::detail
