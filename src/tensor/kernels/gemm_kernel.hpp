// Dispatch table for the packed GEMM micro-kernels.
//
// blas.cpp's gemm() routes every transpose combination except small-NT
// through one of three kernel translation units — scalar, AVX2+FMA,
// AVX-512F — selected at runtime via cpu_features.hpp. Each TU compiles
// the same blocked algorithm (kernels/gemm_kernel_impl.hpp) with a
// different register geometry; the determinism contract (see the impl
// header) guarantees all three produce bitwise-identical C.
//
// Call protocol:
//   1. Pick the table:    const PackedKernels& k = packed_kernels(active_isa())
//   2. Pack B once:       k.pack_b(...) into an aligned Workspace span of
//                         k.packed_b_floats(k_dim, n) floats
//   3. Compute rows:      k.compute(args) — serial over [0, m), or once per
//                         disjoint row chunk from parallel workers. Each
//                         call packs its own A rows into the calling
//                         thread's kGemmPanelA slot, so workers never
//                         share mutable panel state; the packed B panel is
//                         read-only after step 2.
#pragma once

#include <cstddef>

#include "tensor/cpu_features.hpp"

namespace middlefl::tensor {
struct GemmEpilogue;
}

namespace middlefl::tensor::detail {

/// One packed-GEMM invocation over C rows [row_lo, row_hi).
struct PackedGemmArgs {
  std::size_t row_lo = 0;
  std::size_t row_hi = 0;
  std::size_t m = 0;  // full C height (row_sums / relu_mask indexing)
  std::size_t n = 0;
  std::size_t k = 0;  // must be > 0 (k == 0 degenerates in blas.cpp)
  float alpha = 1.0f;
  float beta = 0.0f;
  const float* a = nullptr;  // op(A): m x k row-major, or k x m if trans_a
  bool trans_a = false;
  const float* packed_b = nullptr;  // from pack_b(), shared read-only
  float* c = nullptr;               // full C, row stride n
  const GemmEpilogue* epilogue = nullptr;  // may be null
};

struct PackedKernels {
  std::size_t mr;  // micro-tile rows
  std::size_t nr;  // micro-tile columns
  /// Zero-padded panel sizes in floats.
  std::size_t (*packed_a_floats)(std::size_t rows, std::size_t k);
  std::size_t (*packed_b_floats)(std::size_t k, std::size_t n);
  /// Packs op(B) (k x n after op) into NR-column slabs, zero-padding the
  /// final partial slab. `b` is row-major k x n, or n x k when trans_b.
  void (*pack_b)(std::size_t k, std::size_t n, const float* b, bool trans_b,
                 float* out);
  void (*compute)(const PackedGemmArgs& args);
};

// One table per TU; every table exists in every binary (a TU compiled
// without its ISA falls back to the scalar geometry), and the dispatch
// never selects a table the CPU cannot run.
const PackedKernels& scalar_kernels() noexcept;
const PackedKernels& avx2_kernels() noexcept;
const PackedKernels& avx512_kernels() noexcept;

inline const PackedKernels& packed_kernels(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::kAvx512:
      return avx512_kernels();
    case IsaLevel::kAvx2:
      return avx2_kernels();
    default:
      return scalar_kernels();
  }
}

}  // namespace middlefl::tensor::detail
