// Blocked packed-GEMM algorithm, templated over a register geometry.
//
// Each ISA translation unit instantiates PackedGemm<Arch> where Arch
// supplies the vector type and a handful of primitive ops. The algorithm is
// the classic GEBP decomposition:
//
//   pack op(B) into NR-column slabs (zero-padded), once per gemm call
//   pack op(A) into MR-row panels with alpha folded in, once per row chunk
//   loop: column-slab groups (~Nc) -> Kc blocks -> MR panels -> NR slabs
//         -> MR x NR register micro-tile over the Kc block
//
// Determinism contract (pinned by the pipeline_test goldens): every C
// element is computed as
//
//   c = beta * c                      (exactly once, before any product)
//   for p = 0 .. k-1, ascending:
//     c = madd(round(alpha * op(A)[i,p]), op(B)[p,j], c)
//
// where madd is a fused multiply-add when MIDDLEFL_GEMM_FMA is defined
// (the MIDDLEFL_NATIVE build, matching the compiler-contracted baseline)
// and a separately-rounded multiply+add otherwise. Kc blocking only
// round-trips the accumulator through memory between blocks (bit-neutral),
// Mc/Nc/row-split blocking only reorders across elements, and the vector
// width never mixes lanes — so scalar, AVX2 and AVX-512 instantiations,
// with any blocking and any row split, produce bitwise-identical C. These
// translation units are compiled with -ffp-contract=off so the compiler
// cannot introduce fusions the contract does not specify.
//
// The optional GemmEpilogue (bias add / ReLU / mask write / row sums) uses
// only elementwise operations in a fixed order, so it is bit-identical to
// the unfused layer loops it replaces; it is applied in the final-Kc-block
// sweep while the tile is still in registers.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/blas.hpp"
#include "tensor/kernels/gemm_kernel.hpp"
#include "tensor/workspace.hpp"

namespace middlefl::tensor::detail {

/// Fixed-lane fallback geometry: Vec is a plain float, so every op below
/// is ordinary scalar arithmetic (the compiler may still autovectorize the
/// elementwise loops — that never changes per-element rounding).
struct ArchScalar {
  using Vec = float;
  static constexpr std::size_t kW = 1;    // lanes per Vec
  static constexpr std::size_t kMR = 4;   // micro-tile rows
  static constexpr std::size_t kNV = 8;   // Vecs per micro-tile row

  static Vec zero() noexcept { return 0.0f; }
  static Vec load(const float* p) noexcept { return *p; }
  static void store(float* p, Vec v) noexcept { *p = v; }
  static Vec broadcast(float v) noexcept { return v; }
  static Vec add(Vec a, Vec b) noexcept { return a + b; }
  static Vec mul(Vec a, Vec b) noexcept { return a * b; }
  static Vec madd(Vec a, Vec b, Vec c) noexcept {
#if defined(MIDDLEFL_GEMM_FMA)
    return __builtin_fmaf(a, b, c);
#else
    return a * b + c;
#endif
  }
  static Vec relu(Vec v) noexcept { return v > 0.0f ? v : 0.0f; }
};

template <class Arch>
struct PackedGemm {
  using Vec = typename Arch::Vec;
  static constexpr std::size_t kW = Arch::kW;
  static constexpr std::size_t kMR = Arch::kMR;
  static constexpr std::size_t kNV = Arch::kNV;
  static constexpr std::size_t kNR = kW * kNV;

  // Cache blocking. Kc sizes one B slab chunk (Kc x NR floats) to stay
  // L1-resident under the streaming A panel; Nc bounds the B working set
  // (Kc x Nc floats) to roughly half an L2. Blocking never changes bits
  // (see the contract above), so the values are pure tuning knobs.
  static constexpr std::size_t kKc = 256;
  static constexpr std::size_t kNc = 512;

  static std::size_t packed_a_floats(std::size_t rows, std::size_t k) {
    return ((rows + kMR - 1) / kMR) * kMR * k;
  }
  static std::size_t packed_b_floats(std::size_t k, std::size_t n) {
    return ((n + kNR - 1) / kNR) * kNR * k;
  }

  /// Packs op(B) into slabs: slab s holds columns [s*NR, s*NR+NR) as k
  /// consecutive NR-float rows, padding columns beyond n with zeros (the
  /// padded lanes multiply into accumulators that are never stored).
  static void pack_b(std::size_t k, std::size_t n, const float* b,
                     bool trans_b, float* out) {
    const std::size_t n_slabs = (n + kNR - 1) / kNR;
    for (std::size_t s = 0; s < n_slabs; ++s) {
      const std::size_t col0 = s * kNR;
      const std::size_t valid = n - col0 < kNR ? n - col0 : kNR;
      float* slab = out + s * k * kNR;
      if (!trans_b) {
        for (std::size_t p = 0; p < k; ++p) {
          const float* src = b + p * n + col0;
          float* dst = slab + p * kNR;
          for (std::size_t t = 0; t < valid; ++t) dst[t] = src[t];
          for (std::size_t t = valid; t < kNR; ++t) dst[t] = 0.0f;
        }
      } else {
        // b is n x k: column j of op(B) is row j of b.
        for (std::size_t t = 0; t < valid; ++t) {
          const float* src = b + (col0 + t) * k;
          for (std::size_t p = 0; p < k; ++p) slab[p * kNR + t] = src[p];
        }
        for (std::size_t t = valid; t < kNR; ++t) {
          for (std::size_t p = 0; p < k; ++p) slab[p * kNR + t] = 0.0f;
        }
      }
    }
  }

  /// Packs op(A) rows [row_lo, row_hi) into MR-row panels with alpha
  /// folded in (one rounding, exactly like the unpacked kernels' per-use
  /// `alpha * a` products). When the epilogue requests row_sums, the raw
  /// (unscaled) values are folded into the caller's array here, in
  /// ascending-p order — A is packed exactly once per row, so each element
  /// contributes exactly once.
  static void pack_a(const PackedGemmArgs& g, float* out) {
    const std::size_t rows = g.row_hi - g.row_lo;
    const std::size_t panels = (rows + kMR - 1) / kMR;
    float* row_sums =
        g.epilogue != nullptr ? g.epilogue->row_sums : nullptr;
    for (std::size_t q = 0; q < panels; ++q) {
      float* panel = out + q * g.k * kMR;
      for (std::size_t r = 0; r < kMR; ++r) {
        const std::size_t local = q * kMR + r;
        if (local >= rows) {
          for (std::size_t p = 0; p < g.k; ++p) panel[p * kMR + r] = 0.0f;
          continue;
        }
        const std::size_t row = g.row_lo + local;
        const float* src = g.trans_a ? g.a + row : g.a + row * g.k;
        const std::size_t stride = g.trans_a ? g.m : 1;
        if (row_sums != nullptr) {
          float sums = row_sums[row];
          for (std::size_t p = 0; p < g.k; ++p) {
            const float v = src[p * stride];
            sums += v;
            panel[p * kMR + r] = g.alpha == 1.0f ? v : g.alpha * v;
          }
          row_sums[row] = sums;
        } else if (g.alpha == 1.0f) {
          for (std::size_t p = 0; p < g.k; ++p) {
            panel[p * kMR + r] = src[p * stride];
          }
        } else {
          for (std::size_t p = 0; p < g.k; ++p) {
            panel[p * kMR + r] = g.alpha * src[p * stride];
          }
        }
      }
    }
  }

  /// One MR x NR register tile over a Kc block. `mv`/`nv` bound the valid
  /// region (partial edge tiles stage through a local buffer); `first`
  /// applies the beta prologue, `last` the epilogue + final store,
  /// intermediate Kc blocks round-trip raw accumulators through C.
  static void run_tile(const float* ap, const float* bp, std::size_t kc,
                       float* ct, std::size_t ldc, std::size_t mv,
                       std::size_t nv, bool first, bool last,
                       const PackedGemmArgs& g, std::size_t row0,
                       std::size_t col0) {
    Vec acc[kMR][kNV];
    const bool full = mv == kMR && nv == kNR;
    alignas(64) float stage[kMR * kNR];

    if (first && g.beta == 0.0f) {
      for (std::size_t r = 0; r < kMR; ++r) {
        for (std::size_t v = 0; v < kNV; ++v) acc[r][v] = Arch::zero();
      }
    } else {
      if (full) {
        for (std::size_t r = 0; r < kMR; ++r) {
          for (std::size_t v = 0; v < kNV; ++v) {
            acc[r][v] = Arch::load(ct + r * ldc + v * kW);
          }
        }
      } else {
        for (std::size_t i = 0; i < kMR * kNR; ++i) stage[i] = 0.0f;
        for (std::size_t r = 0; r < mv; ++r) {
          const float* src = ct + r * ldc;
          for (std::size_t j = 0; j < nv; ++j) stage[r * kNR + j] = src[j];
        }
        for (std::size_t r = 0; r < kMR; ++r) {
          for (std::size_t v = 0; v < kNV; ++v) {
            acc[r][v] = Arch::load(stage + r * kNR + v * kW);
          }
        }
      }
      if (first && g.beta != 1.0f) {
        const Vec vb = Arch::broadcast(g.beta);
        for (std::size_t r = 0; r < kMR; ++r) {
          for (std::size_t v = 0; v < kNV; ++v) {
            acc[r][v] = Arch::mul(acc[r][v], vb);
          }
        }
      }
    }

    for (std::size_t p = 0; p < kc; ++p) {
      const float* brow = bp + p * kNR;
      Vec bv[kNV];
      for (std::size_t v = 0; v < kNV; ++v) bv[v] = Arch::load(brow + v * kW);
      const float* arow = ap + p * kMR;
      for (std::size_t r = 0; r < kMR; ++r) {
        const Vec av = Arch::broadcast(arow[r]);
        for (std::size_t v = 0; v < kNV; ++v) {
          acc[r][v] = Arch::madd(av, bv[v], acc[r][v]);
        }
      }
    }

    const GemmEpilogue* epi = last ? g.epilogue : nullptr;
    if (epi != nullptr) {
      if (epi->col_bias != nullptr) {
        Vec cb[kNV];
        if (full) {
          for (std::size_t v = 0; v < kNV; ++v) {
            cb[v] = Arch::load(epi->col_bias + col0 + v * kW);
          }
        } else {
          for (std::size_t j = 0; j < kNR; ++j) {
            stage[j] = j < nv ? epi->col_bias[col0 + j] : 0.0f;
          }
          for (std::size_t v = 0; v < kNV; ++v) {
            cb[v] = Arch::load(stage + v * kW);
          }
        }
        for (std::size_t r = 0; r < kMR; ++r) {
          for (std::size_t v = 0; v < kNV; ++v) {
            acc[r][v] = Arch::add(acc[r][v], cb[v]);
          }
        }
      }
      if (epi->row_bias != nullptr) {
        for (std::size_t r = 0; r < mv; ++r) {
          const Vec rb = Arch::broadcast(epi->row_bias[row0 + r]);
          for (std::size_t v = 0; v < kNV; ++v) {
            acc[r][v] = Arch::add(acc[r][v], rb);
          }
        }
      }
      if (epi->relu) {
        for (std::size_t r = 0; r < kMR; ++r) {
          for (std::size_t v = 0; v < kNV; ++v) {
            acc[r][v] = Arch::relu(acc[r][v]);
          }
        }
      }
    }

    if (full) {
      for (std::size_t r = 0; r < kMR; ++r) {
        for (std::size_t v = 0; v < kNV; ++v) {
          Arch::store(ct + r * ldc + v * kW, acc[r][v]);
        }
      }
    } else {
      for (std::size_t r = 0; r < kMR; ++r) {
        for (std::size_t v = 0; v < kNV; ++v) {
          Arch::store(stage + r * kNR + v * kW, acc[r][v]);
        }
      }
      for (std::size_t r = 0; r < mv; ++r) {
        float* dst = ct + r * ldc;
        for (std::size_t j = 0; j < nv; ++j) dst[j] = stage[r * kNR + j];
      }
    }

    if (epi != nullptr && epi->relu_mask != nullptr) {
      // Post-ReLU values are > 0 exactly where the pre-ReLU input was
      // (NaN and -0.0 both map to stored +0.0, mask 0 — the unfused
      // semantics), so the mask derives from what was just stored.
      for (std::size_t r = 0; r < mv; ++r) {
        const float* crow = ct + r * ldc;
        std::uint8_t* mrow = epi->relu_mask + (row0 + r) * g.n + col0;
        for (std::size_t j = 0; j < nv; ++j) {
          mrow[j] = crow[j] > 0.0f ? 1 : 0;
        }
      }
    }
  }

  static void compute(const PackedGemmArgs& g) {
    const std::size_t rows = g.row_hi - g.row_lo;
    if (rows == 0 || g.n == 0) return;
    auto apanel = Workspace::tls().aligned_floats(
        WsAlignedSlot::kGemmPanelA, packed_a_floats(rows, g.k));
    pack_a(g, apanel.data());

    const std::size_t n_slabs = (g.n + kNR - 1) / kNR;
    const std::size_t slabs_per_group = kNc / kNR > 0 ? kNc / kNR : 1;
    const std::size_t num_panels = (rows + kMR - 1) / kMR;
    const std::size_t num_kb = (g.k + kKc - 1) / kKc;

    for (std::size_t s0 = 0; s0 < n_slabs; s0 += slabs_per_group) {
      const std::size_t s1 = s0 + slabs_per_group < n_slabs
                                 ? s0 + slabs_per_group
                                 : n_slabs;
      for (std::size_t kb = 0; kb < num_kb; ++kb) {
        const std::size_t p0 = kb * kKc;
        const std::size_t kc = g.k - p0 < kKc ? g.k - p0 : kKc;
        const bool first = kb == 0;
        const bool last = kb + 1 == num_kb;
        for (std::size_t q = 0; q < num_panels; ++q) {
          const std::size_t local0 = q * kMR;
          const std::size_t mv =
              rows - local0 < kMR ? rows - local0 : kMR;
          const float* ap = apanel.data() + q * g.k * kMR + p0 * kMR;
          for (std::size_t s = s0; s < s1; ++s) {
            const std::size_t col0 = s * kNR;
            const std::size_t nv =
                g.n - col0 < kNR ? g.n - col0 : kNR;
            const float* bp = g.packed_b + s * g.k * kNR + p0 * kNR;
            float* ct = g.c + (g.row_lo + local0) * g.n + col0;
            run_tile(ap, bp, kc, ct, g.n, mv, nv, first, last, g,
                     g.row_lo + local0, col0);
          }
        }
      }
    }
  }

  static const PackedKernels& table() noexcept {
    static const PackedKernels t{kMR, kNR, &packed_a_floats,
                                 &packed_b_floats, &pack_b, &compute};
    return t;
  }
};

}  // namespace middlefl::tensor::detail
