#include "tensor/cpu_features.hpp"

#include <atomic>
#include <cstdlib>

namespace middlefl::tensor {
namespace {

IsaLevel probe() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f")) return IsaLevel::kAvx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return IsaLevel::kAvx2;
  }
#endif
  return IsaLevel::kScalar;
}

IsaLevel clamp_to_detected(IsaLevel level) noexcept {
  return static_cast<int>(level) <= static_cast<int>(detected_isa())
             ? level
             : detected_isa();
}

/// Environment override, resolved once: getenv is not guaranteed
/// thread-safe against setenv, and the dispatch must not flip mid-run.
IsaLevel env_or_detected() noexcept {
  static const IsaLevel resolved = [] {
    if (const char* env = std::getenv("MIDDLEFL_ISA")) {
      if (const auto parsed = isa_from_string(env)) {
        return clamp_to_detected(*parsed);
      }
    }
    return detected_isa();
  }();
  return resolved;
}

// -1 = no force_isa() pin. Relaxed is enough: the value is a pure
// performance hint and every level computes identical bits.
std::atomic<int> g_forced{-1};

}  // namespace

const char* to_string(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::kAvx512:
      return "avx512";
    case IsaLevel::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

std::optional<IsaLevel> isa_from_string(const std::string& name) noexcept {
  if (name == "scalar") return IsaLevel::kScalar;
  if (name == "avx2") return IsaLevel::kAvx2;
  if (name == "avx512") return IsaLevel::kAvx512;
  return std::nullopt;
}

IsaLevel detected_isa() noexcept {
  static const IsaLevel detected = probe();
  return detected;
}

IsaLevel active_isa() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<IsaLevel>(forced);
  return env_or_detected();
}

IsaLevel force_isa(IsaLevel level) noexcept {
  const IsaLevel applied = clamp_to_detected(level);
  g_forced.store(static_cast<int>(applied), std::memory_order_relaxed);
  return applied;
}

void clear_forced_isa() noexcept {
  g_forced.store(-1, std::memory_order_relaxed);
}

}  // namespace middlefl::tensor
