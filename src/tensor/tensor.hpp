// Dense row-major float tensor.
//
// Design notes. The FL stack needs exactly one storage kind: owning,
// contiguous, float32 — models are aggregated as flat vectors and layers
// address their activations by computed offsets. We therefore skip strided
// views and broadcasting machinery; reshape is O(1) because data is always
// contiguous. Bounds checks live in the rare indexed accessors; hot loops
// use spans.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "parallel/rng.hpp"
#include "tensor/shape.hpp"

namespace middlefl::tensor {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(shape_.numel(), 0.0f) {}

  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  /// I.i.d. N(0, stddev^2) entries from the given generator.
  static Tensor randn(Shape shape, parallel::Xoshiro256& rng,
                      float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries.
  static Tensor rand_uniform(Shape shape, parallel::Xoshiro256& rng,
                             float lo = 0.0f, float hi = 1.0f);

  const Shape& shape() const noexcept { return shape_; }
  std::size_t numel() const noexcept { return data_.size(); }
  std::size_t rank() const noexcept { return shape_.rank(); }
  std::size_t dim(std::size_t axis) const { return shape_.dim(axis); }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }

  float& operator[](std::size_t flat_index) { return data_[flat_index]; }
  float operator[](std::size_t flat_index) const { return data_[flat_index]; }

  /// Bounds-checked element access (use in tests / cold paths only).
  float& at(std::initializer_list<std::size_t> index);
  float at(std::initializer_list<std::size_t> index) const;

  /// O(1); `new_shape.numel()` must equal numel().
  Tensor& reshape(Shape new_shape);

  /// Reshapes to `shape` and zero-fills, reusing the existing allocation
  /// when capacity allows. Layers call this every forward/backward, so the
  /// activation buffers of a model reach a high-water mark once and stop
  /// heap-allocating. The shape is only copied when it actually changed —
  /// Shape owns a dims vector, so an unconditional assignment would be a
  /// heap allocation per layer call in the training loop.
  Tensor& reset(const Shape& shape) {
    if (shape_ != shape) shape_ = shape;
    data_.assign(shape_.numel(), 0.0f);
    return *this;
  }

  /// reset() without constructing a temporary Shape: compares the dims
  /// in place, so the steady-state case (same extents every step) touches
  /// no shape storage at all.
  Tensor& reset(std::initializer_list<std::size_t> dims) {
    if (!std::equal(dims.begin(), dims.end(), shape_.dims().begin(),
                    shape_.dims().end())) {
      shape_ = Shape(dims);
    }
    data_.assign(shape_.numel(), 0.0f);
    return *this;
  }

  /// reset() minus the zero-fill, for callers that overwrite every element
  /// before reading any (GEMM outputs with beta == 0, elementwise forward
  /// outputs). Contents beyond the previous size are zero; the rest is the
  /// previous data. NOT for accumulation targets — Conv2d::backward's
  /// grad_input (col2im does +=) must keep the zeroing reset().
  Tensor& reset_for_overwrite(const Shape& shape) {
    if (shape_ != shape) shape_ = shape;
    data_.resize(shape_.numel());
    return *this;
  }

  Tensor& reset_for_overwrite(std::initializer_list<std::size_t> dims) {
    if (!std::equal(dims.begin(), dims.end(), shape_.dims().begin(),
                    shape_.dims().end())) {
      shape_ = Shape(dims);
    }
    data_.resize(shape_.numel());
    return *this;
  }

  void fill(float value) noexcept;

  // Elementwise in-place arithmetic; shapes must match exactly.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);  // Hadamard
  Tensor& operator*=(float scalar) noexcept;
  Tensor& operator+=(float scalar) noexcept;

  /// this += alpha * other.
  Tensor& axpy(float alpha, const Tensor& other);

  float sum() const noexcept;
  float max() const noexcept;  // requires numel() > 0
  /// Index of the maximum element (first on ties); requires numel() > 0.
  std::size_t argmax() const noexcept;
  /// Euclidean norm.
  float norm() const noexcept;

 private:
  std::size_t flat_offset(std::initializer_list<std::size_t> index) const;

  Shape shape_;
  std::vector<float> data_;
};

/// Out-of-place helpers (shape-checked).
Tensor operator+(Tensor lhs, const Tensor& rhs);
Tensor operator-(Tensor lhs, const Tensor& rhs);
Tensor operator*(Tensor lhs, float scalar);

}  // namespace middlefl::tensor
