// Shape arithmetic for dense row-major tensors.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace middlefl::tensor {

/// Tensor extents, outermost dimension first (row-major). Rank 0 denotes a
/// scalar with one element.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  std::size_t rank() const noexcept { return dims_.size(); }

  std::size_t dim(std::size_t axis) const {
    if (axis >= dims_.size()) {
      throw std::out_of_range("Shape::dim: axis " + std::to_string(axis) +
                              " out of range for rank " +
                              std::to_string(dims_.size()));
    }
    return dims_[axis];
  }

  const std::vector<std::size_t>& dims() const noexcept { return dims_; }

  /// Total number of elements (1 for rank-0).
  std::size_t numel() const noexcept {
    return std::accumulate(dims_.begin(), dims_.end(), std::size_t{1},
                           std::multiplies<>{});
  }

  bool operator==(const Shape& other) const noexcept {
    return dims_ == other.dims_;
  }
  bool operator!=(const Shape& other) const noexcept {
    return !(*this == other);
  }

  std::string to_string() const {
    std::string out = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(dims_[i]);
    }
    out += "]";
    return out;
  }

 private:
  void validate() const {
    for (std::size_t d : dims_) {
      if (d == 0) {
        throw std::invalid_argument("Shape: zero-sized dimension in " +
                                    to_string());
      }
    }
  }

  std::vector<std::size_t> dims_;
};

}  // namespace middlefl::tensor
