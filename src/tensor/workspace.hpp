// Thread-local scratch-buffer arena for hot-path kernels.
//
// The step loop used to heap-allocate on every call in several places:
// gemm transpose-packing, Conv2d's im2col gradient panel, the on-device
// blend output, and weighted_average's double accumulator. Each of those
// sites now borrows a slot from the calling thread's Workspace instead —
// buffers grow to a high-water mark on first use and are reused for the
// rest of the thread's life, so steady-state step execution performs no
// allocations in these kernels.
//
// Rules:
//  - A slot is NOT re-entrant: a kernel must finish with its slot before
//    any function it calls borrows the same slot. Slots are assigned so the
//    call graph never nests a slot inside itself (gemm packing never calls
//    gemm, the blend buffer is consumed before training runs, ...).
//  - Spans returned by floats()/doubles() are invalidated by the next
//    borrow of the SAME slot on the same thread; borrowing other slots is
//    safe.
//  - Everything is thread-local: parallel workers each get their own
//    arena, so borrowing needs no synchronization.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace middlefl::tensor {

/// Float scratch slots, one per non-overlapping hot-path use.
enum class WsSlot : std::size_t {
  kGemmPackA = 0,  // gemm: packed/transposed A operand
  kGemmPackB,      // gemm: packed/transposed B operand
  kConvColGrad,    // Conv2d::backward: d(col) panel before col2im
  kBlend,          // Simulation: on-device blended model w_hat
  kScratch,        // generic caller-owned scratch (benches, cloud sync)
  kCount,
};

/// Double scratch slots (reduction accumulators).
enum class WsDoubleSlot : std::size_t {
  kAccumulate = 0,  // weighted_average: per-chunk accumulator
  kPartials,        // chunked dot/nrm2: per-chunk partial sums
  kCount,
};

class Workspace {
 public:
  /// The calling thread's arena (created on first use).
  static Workspace& tls();

  /// Borrows the first `n` floats of `slot`, growing it if needed. The
  /// contents are unspecified (callers overwrite or zero as needed).
  std::span<float> floats(WsSlot slot, std::size_t n) {
    auto& buf = float_slots_[static_cast<std::size_t>(slot)];
    if (buf.size() < n) buf.resize(n);
    return {buf.data(), n};
  }

  std::span<double> doubles(WsDoubleSlot slot, std::size_t n) {
    auto& buf = double_slots_[static_cast<std::size_t>(slot)];
    if (buf.size() < n) buf.resize(n);
    return {buf.data(), n};
  }

  /// Total bytes currently retained across all slots (introspection).
  std::size_t retained_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& buf : float_slots_) total += buf.capacity() * sizeof(float);
    for (const auto& buf : double_slots_) {
      total += buf.capacity() * sizeof(double);
    }
    return total;
  }

 private:
  std::array<std::vector<float>, static_cast<std::size_t>(WsSlot::kCount)>
      float_slots_;
  std::array<std::vector<double>,
             static_cast<std::size_t>(WsDoubleSlot::kCount)>
      double_slots_;
};

}  // namespace middlefl::tensor
