// Thread-local scratch-buffer arena for hot-path kernels.
//
// The step loop used to heap-allocate on every call in several places:
// gemm transpose-packing, Conv2d's im2col gradient panel, the on-device
// blend output, and weighted_average's double accumulator. Each of those
// sites now borrows a slot from the calling thread's Workspace instead —
// buffers grow to a high-water mark on first use and are reused for the
// rest of the thread's life, so steady-state step execution performs no
// allocations in these kernels.
//
// Rules:
//  - A slot is NOT re-entrant: a kernel must finish with its slot before
//    any function it calls borrows the same slot. Slots are assigned so the
//    call graph never nests a slot inside itself (gemm packing never calls
//    gemm, the blend buffer is consumed before training runs, ...).
//  - Spans returned by floats()/doubles() are invalidated by the next
//    borrow of the SAME slot on the same thread; borrowing other slots is
//    safe.
//  - Everything is thread-local: parallel workers each get their own
//    arena, so borrowing needs no synchronization.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace middlefl::tensor {

/// Float scratch slots, one per non-overlapping hot-path use.
enum class WsSlot : std::size_t {
  kGemmPackA = 0,  // gemm: packed/transposed A operand
  kGemmPackB,      // gemm: packed/transposed B operand
  kConvColGrad,    // Conv2d::backward: d(col) panel before col2im
  kBlend,          // Simulation: on-device blended model w_hat
  kScratch,        // generic caller-owned scratch (benches, cloud sync)
  kCount,
};

/// Double scratch slots (reduction accumulators).
enum class WsDoubleSlot : std::size_t {
  kAccumulate = 0,  // weighted_average: per-chunk accumulator
  kPartials,        // chunked dot/nrm2: per-chunk partial sums
  kCount,
};

/// 64-byte-aligned float slots for the packed-GEMM micro-kernel panels
/// (cache-line/vector-register aligned loads on every ISA tier).
enum class WsAlignedSlot : std::size_t {
  kGemmPanelA = 0,  // packed (alpha-scaled, MR-padded) A panel
  kGemmPanelB,      // packed (NR-slab, zero-padded) B panel
  kCount,
};

/// Index scratch slots (std::size_t).
enum class WsIndexSlot : std::size_t {
  kMinibatchPositions = 0,  // sample_minibatch_into: drawn sample positions
  kCount,
};

/// Fixed-capacity-free buffer of 64-byte-aligned floats; grows like the
/// vector slots but with over-aligned storage (plain std::vector only
/// guarantees alignof(float)).
class AlignedFloatBuffer {
 public:
  AlignedFloatBuffer() = default;
  AlignedFloatBuffer(const AlignedFloatBuffer&) = delete;
  AlignedFloatBuffer& operator=(const AlignedFloatBuffer&) = delete;
  ~AlignedFloatBuffer() { release(); }

  /// Grows to at least `n` floats (contents unspecified after growth).
  float* ensure(std::size_t n) {
    if (n > capacity_) grow(n);
    return data_;
  }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  void grow(std::size_t n);
  void release() noexcept;

  float* data_ = nullptr;
  std::size_t capacity_ = 0;
};

class Workspace {
 public:
  /// The calling thread's arena (created on first use).
  static Workspace& tls();

  /// Borrows the first `n` floats of `slot`, growing it if needed. The
  /// contents are unspecified (callers overwrite or zero as needed).
  std::span<float> floats(WsSlot slot, std::size_t n) {
    auto& buf = float_slots_[static_cast<std::size_t>(slot)];
    if (buf.size() < n) buf.resize(n);
    return {buf.data(), n};
  }

  std::span<double> doubles(WsDoubleSlot slot, std::size_t n) {
    auto& buf = double_slots_[static_cast<std::size_t>(slot)];
    if (buf.size() < n) buf.resize(n);
    return {buf.data(), n};
  }

  /// Borrows `n` 64-byte-aligned floats (contents unspecified).
  std::span<float> aligned_floats(WsAlignedSlot slot, std::size_t n) {
    auto& buf = aligned_slots_[static_cast<std::size_t>(slot)];
    return {buf.ensure(n), n};
  }

  /// Borrows `n` size_t entries (contents unspecified).
  std::span<std::size_t> indices(WsIndexSlot slot, std::size_t n) {
    auto& buf = index_slots_[static_cast<std::size_t>(slot)];
    if (buf.size() < n) buf.resize(n);
    return {buf.data(), n};
  }

  /// Total bytes currently retained across all slots (introspection).
  std::size_t retained_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& buf : float_slots_) total += buf.capacity() * sizeof(float);
    for (const auto& buf : double_slots_) {
      total += buf.capacity() * sizeof(double);
    }
    for (const auto& buf : aligned_slots_) {
      total += buf.capacity() * sizeof(float);
    }
    for (const auto& buf : index_slots_) {
      total += buf.capacity() * sizeof(std::size_t);
    }
    return total;
  }

 private:
  std::array<std::vector<float>, static_cast<std::size_t>(WsSlot::kCount)>
      float_slots_;
  std::array<std::vector<double>,
             static_cast<std::size_t>(WsDoubleSlot::kCount)>
      double_slots_;
  std::array<AlignedFloatBuffer,
             static_cast<std::size_t>(WsAlignedSlot::kCount)>
      aligned_slots_;
  std::array<std::vector<std::size_t>,
             static_cast<std::size_t>(WsIndexSlot::kCount)>
      index_slots_;
};

}  // namespace middlefl::tensor
