#include "tensor/blas.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/cpu_features.hpp"
#include "tensor/kernels/gemm_kernel.hpp"
#include "tensor/workspace.hpp"

namespace middlefl::tensor {
namespace {

void check_size(std::span<const float> s, std::size_t expected,
                const char* what) {
  if (s.size() != expected) {
    throw std::invalid_argument(std::string(what) + ": expected " +
                                std::to_string(expected) + " elements, got " +
                                std::to_string(s.size()));
  }
}

/// Applies the beta prologue to one C row: zero, keep, or scale.
inline void scale_row(float* c, std::size_t n, float beta) noexcept {
  if (beta == 0.0f) {
    std::fill(c, c + n, 0.0f);
  } else if (beta != 1.0f) {
    for (std::size_t j = 0; j < n; ++j) c[j] *= beta;
  }
}

/// Core 4-lane dot kernel; the lane structure fixes the summation order so
/// every caller (serial, chunked, row-split gemm) gets identical floats.
inline double dot_kernel(const float* x, const float* y,
                         std::size_t n) noexcept {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += static_cast<double>(x[i]) * y[i];
    acc1 += static_cast<double>(x[i + 1]) * y[i + 1];
    acc2 += static_cast<double>(x[i + 2]) * y[i + 2];
    acc3 += static_cast<double>(x[i + 3]) * y[i + 3];
  }
  for (; i < n; ++i) acc0 += static_cast<double>(x[i]) * y[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

inline double sumsq_kernel(const float* x, std::size_t n) noexcept {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += static_cast<double>(x[i]) * x[i];
    acc1 += static_cast<double>(x[i + 1]) * x[i + 1];
    acc2 += static_cast<double>(x[i + 2]) * x[i + 2];
    acc3 += static_cast<double>(x[i + 3]) * x[i + 3];
  }
  for (; i < n; ++i) acc0 += static_cast<double>(x[i]) * x[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

/// Fixed chunk size for the deterministic parallel reductions. Partial
/// sums are combined in chunk order, so the result does not depend on
/// whether (or how) the chunks were distributed over threads.
constexpr std::size_t kReduceChunk = std::size_t{1} << 15;

template <typename ChunkFn>
double chunked_reduce(std::size_t n, parallel::ThreadPool* pool,
                      ChunkFn&& chunk_fn) {
  if (n <= kReduceChunk) return chunk_fn(0, n);
  const std::size_t num_chunks = (n + kReduceChunk - 1) / kReduceChunk;
  auto partials =
      Workspace::tls().doubles(WsDoubleSlot::kPartials, num_chunks);
  const auto compute = [&](std::size_t chunk) {
    const std::size_t lo = chunk * kReduceChunk;
    const std::size_t hi = std::min(n, lo + kReduceChunk);
    partials[chunk] = chunk_fn(lo, hi);
  };
  if (pool != nullptr && pool->size() > 1 && num_chunks > 1) {
    parallel::parallel_for(*pool, 0, num_chunks, compute);
  } else {
    for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) compute(chunk);
  }
  double total = 0.0;
  for (std::size_t chunk = 0; chunk < num_chunks; ++chunk) {
    total += partials[chunk];
  }
  return total;
}

// --- GEMM kernels -----------------------------------------------------------
//
// The general path lives in kernels/ (packed micro-kernels with runtime
// ISA dispatch); this file keeps only the small-NT dot-form kernel, whose
// distinct lane/summation tree is pinned by the golden fingerprints for
// shapes where panel packing would dominate (n < 16 or k < 16). Every
// kernel computes rows [row_lo, row_hi) of C and each row's arithmetic
// order depends only on the row itself, so any row split yields identical
// results — the property the parallel path and the determinism pin rely on.

/// Applies the fused epilogue to rows [row_lo, row_hi) of C after a
/// non-packed kernel: the same elementwise steps, in the same order, as
/// the packed kernels apply in-register (see GemmEpilogue).
void epilogue_rows(const GemmEpilogue& epi, std::size_t row_lo,
                   std::size_t row_hi, std::size_t n, float* c) noexcept {
  for (std::size_t i = row_lo; i < row_hi; ++i) {
    float* ci = c + i * n;
    if (epi.col_bias != nullptr) {
      for (std::size_t j = 0; j < n; ++j) ci[j] += epi.col_bias[j];
    }
    if (epi.row_bias != nullptr) {
      const float rb = epi.row_bias[i];
      for (std::size_t j = 0; j < n; ++j) ci[j] += rb;
    }
    if (epi.relu) {
      for (std::size_t j = 0; j < n; ++j) ci[j] = ci[j] > 0.0f ? ci[j] : 0.0f;
    }
    if (epi.relu_mask != nullptr) {
      std::uint8_t* mrow = epi.relu_mask + i * n;
      for (std::size_t j = 0; j < n; ++j) mrow[j] = ci[j] > 0.0f ? 1 : 0;
    }
  }
}

/// row_sums side channel for the non-packed path: fold op(A) row values
/// (ascending p) into the caller's accumulator array. `a` is op(A) in
/// row-major m x k form here (the small-NT path never sees a transposed A).
void row_sums_rows(float* row_sums, std::size_t row_lo, std::size_t row_hi,
                   std::size_t k, const float* a) noexcept {
  for (std::size_t i = row_lo; i < row_hi; ++i) {
    const float* ai = a + i * k;
    float sums = row_sums[i];
    for (std::size_t p = 0; p < k; ++p) sums += ai[p];
    row_sums[i] = sums;
  }
}

/// NT: C[i,j] = alpha * <A[i,:], B[j,:]> + beta * C[i,j]. A m x k, B n x k.
/// Both operands are walked contiguously; two output columns per pass with
/// four independent float lanes each keep the FP order fixed per (i, j)
/// and give the vectorizer reduction-free lanes.
void gemm_nt_rows(std::size_t row_lo, std::size_t row_hi, std::size_t n,
                  std::size_t k, float alpha, const float* a, const float* b,
                  float beta, float* c) noexcept {
  for (std::size_t i = row_lo; i < row_hi; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      float s00 = 0.0f, s01 = 0.0f, s02 = 0.0f, s03 = 0.0f;
      float s10 = 0.0f, s11 = 0.0f, s12 = 0.0f, s13 = 0.0f;
      std::size_t p = 0;
      for (; p + 4 <= k; p += 4) {
        const float a0 = ai[p];
        const float a1 = ai[p + 1];
        const float a2 = ai[p + 2];
        const float a3 = ai[p + 3];
        s00 += a0 * b0[p];
        s01 += a1 * b0[p + 1];
        s02 += a2 * b0[p + 2];
        s03 += a3 * b0[p + 3];
        s10 += a0 * b1[p];
        s11 += a1 * b1[p + 1];
        s12 += a2 * b1[p + 2];
        s13 += a3 * b1[p + 3];
      }
      for (; p < k; ++p) {
        s00 += ai[p] * b0[p];
        s10 += ai[p] * b1[p];
      }
      const float d0 = alpha * ((s00 + s01) + (s02 + s03));
      const float d1 = alpha * ((s10 + s11) + (s12 + s13));
      if (beta == 0.0f) {
        ci[j] = d0;
        ci[j + 1] = d1;
      } else {
        ci[j] = d0 + beta * ci[j];
        ci[j + 1] = d1 + beta * ci[j + 1];
      }
    }
    for (; j < n; ++j) {
      const float* bj = b + j * k;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      std::size_t p = 0;
      for (; p + 4 <= k; p += 4) {
        s0 += ai[p] * bj[p];
        s1 += ai[p + 1] * bj[p + 1];
        s2 += ai[p + 2] * bj[p + 2];
        s3 += ai[p + 3] * bj[p + 3];
      }
      for (; p < k; ++p) s0 += ai[p] * bj[p];
      const float d = alpha * ((s0 + s1) + (s2 + s3));
      ci[j] = beta == 0.0f ? d : d + beta * ci[j];
    }
  }
}

/// Blocked transpose of row-major `rows x cols` into `dst` (cols x rows).
void transpose_pack(const float* src, std::size_t rows, std::size_t cols,
                    float* dst) noexcept {
  constexpr std::size_t kBlock = 32;
  for (std::size_t i0 = 0; i0 < rows; i0 += kBlock) {
    const std::size_t i1 = std::min(rows, i0 + kBlock);
    for (std::size_t j0 = 0; j0 < cols; j0 += kBlock) {
      const std::size_t j1 = std::min(cols, j0 + kBlock);
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t j = j0; j < j1; ++j) {
          dst[j * rows + i] = src[i * cols + j];
        }
      }
    }
  }
}

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  check_size(x, y.size(), "axpy");
  const float* xp = x.data();
  float* yp = y.data();
  const std::size_t n = y.size();
  for (std::size_t i = 0; i < n; ++i) yp[i] += alpha * xp[i];
}

void scal(float alpha, std::span<float> x) noexcept {
  for (float& v : x) v *= alpha;
}

double dot(std::span<const float> x, std::span<const float> y) {
  check_size(x, y.size(), "dot");
  return dot_kernel(x.data(), y.data(), x.size());
}

double dot(std::span<const float> x, std::span<const float> y,
           parallel::ThreadPool* pool) {
  check_size(x, y.size(), "dot");
  const float* xp = x.data();
  const float* yp = y.data();
  return chunked_reduce(x.size(), pool, [=](std::size_t lo, std::size_t hi) {
    return dot_kernel(xp + lo, yp + lo, hi - lo);
  });
}

double nrm2(std::span<const float> x) noexcept {
  return std::sqrt(sumsq_kernel(x.data(), x.size()));
}

double nrm2(std::span<const float> x, parallel::ThreadPool* pool) {
  const float* xp = x.data();
  return std::sqrt(
      chunked_reduce(x.size(), pool, [=](std::size_t lo, std::size_t hi) {
        return sumsq_kernel(xp + lo, hi - lo);
      }));
}

void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, std::span<const float> a,
          std::span<const float> b, float beta, std::span<float> c,
          parallel::ThreadPool* pool, const GemmEpilogue* epilogue) {
  check_size(a, m * k, "gemm: A");
  check_size(b, k * n, "gemm: B");
  check_size(c, m * n, "gemm: C");
  if (m == 0 || n == 0) return;

  // Degenerate k == 0: the product contributes nothing, so C is just the
  // beta prologue plus the epilogue (row_sums stays untouched — the sum
  // over an empty p range is empty).
  if (k == 0) {
    for (std::size_t i = 0; i < m; ++i) scale_row(c.data() + i * n, n, beta);
    if (epilogue != nullptr) epilogue_rows(*epilogue, 0, m, n, c.data());
    return;
  }

  // TT is the one case without a direct kernel: pack op(A) once into the
  // thread-local workspace (amortized: no allocation after warm-up) and
  // fall through as NT.
  const float* a_ptr = a.data();
  Trans eff_a = trans_a;
  if (trans_a == Trans::kYes && trans_b == Trans::kYes) {
    auto packed = Workspace::tls().floats(WsSlot::kGemmPackA, m * k);
    transpose_pack(a.data(), k, m, packed.data());
    a_ptr = packed.data();
    eff_a = Trans::kNo;
  }
  float* c_ptr = c.data();

  // Parallel heuristic, shared by both paths: split into row panels when
  // there is enough arithmetic to amortize the fork/join (>= ~1 MFLOP and
  // >= 2 rows per worker). Row splits do not change any row's arithmetic
  // order, so the parallel result is bitwise-identical to the serial one.
  const std::size_t flops = 2 * m * n * k;
  const bool go_parallel = pool != nullptr && pool->size() > 1 &&
                           flops >= (1u << 20) && m >= 2 * pool->size();
  const auto run_split = [&](const auto& run_rows) {
    if (go_parallel) {
      const std::size_t grain = std::max<std::size_t>(
          4, ((m / (pool->size() * 4)) + 3) & ~std::size_t{3});
      const std::size_t num_blocks = (m + grain - 1) / grain;
      parallel::parallel_for(*pool, 0, num_blocks, [&](std::size_t block) {
        const std::size_t lo = block * grain;
        run_rows(lo, std::min(m, lo + grain));
      });
    } else {
      run_rows(0, m);
    }
  };

  // NT with a small B (n < 16 or k < 16) keeps the direct dot-form kernel:
  // panel packing would dominate at these shapes, and its distinct
  // summation tree is pinned by the golden fingerprints. Everything else
  // goes through the packed micro-kernel with runtime ISA dispatch.
  if (eff_a == Trans::kNo && trans_b == Trans::kYes && (n < 16 || k < 16)) {
    run_split([&](std::size_t lo, std::size_t hi) {
      gemm_nt_rows(lo, hi, n, k, alpha, a_ptr, b.data(), beta, c_ptr);
      if (epilogue != nullptr) {
        if (epilogue->row_sums != nullptr) {
          row_sums_rows(epilogue->row_sums, lo, hi, k, a_ptr);
        }
        epilogue_rows(*epilogue, lo, hi, n, c_ptr);
      }
    });
    return;
  }

  // Packed path. B is packed once on the calling thread into its aligned
  // workspace slot; row-chunk workers only read it, and each packs its own
  // A rows into its thread's kGemmPanelA slot inside compute().
  const auto& kern = detail::packed_kernels(active_isa());
  auto bpanel = Workspace::tls().aligned_floats(WsAlignedSlot::kGemmPanelB,
                                                kern.packed_b_floats(k, n));
  kern.pack_b(k, n, b.data(), trans_b == Trans::kYes, bpanel.data());

  detail::PackedGemmArgs args;
  args.m = m;
  args.n = n;
  args.k = k;
  args.alpha = alpha;
  args.beta = beta;
  args.a = a_ptr;
  args.trans_a = eff_a == Trans::kYes;
  args.packed_b = bpanel.data();
  args.c = c_ptr;
  args.epilogue = epilogue;
  run_split([&](std::size_t lo, std::size_t hi) {
    detail::PackedGemmArgs chunk = args;
    chunk.row_lo = lo;
    chunk.row_hi = hi;
    kern.compute(chunk);
  });
}

void gemv(Trans trans_a, std::size_t m, std::size_t n, float alpha,
          std::span<const float> a, std::span<const float> x, float beta,
          std::span<float> y) {
  check_size(a, m * n, "gemv: A");
  if (trans_a == Trans::kNo) {
    check_size(x, n, "gemv: x");
    check_size(std::span<const float>(y.data(), y.size()), m, "gemv: y");
    for (std::size_t i = 0; i < m; ++i) {
      const double acc = dot_kernel(a.data() + i * n, x.data(), n);
      y[i] = alpha * static_cast<float>(acc) + beta * y[i];
    }
  } else {
    check_size(x, m, "gemv: x");
    check_size(std::span<const float>(y.data(), y.size()), n, "gemv: y");
    scale_row(y.data(), n, beta);
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const float v0 = alpha * x[i];
      const float v1 = alpha * x[i + 1];
      const float v2 = alpha * x[i + 2];
      const float v3 = alpha * x[i + 3];
      const float* r0 = a.data() + i * n;
      const float* r1 = r0 + n;
      const float* r2 = r1 + n;
      const float* r3 = r2 + n;
      float* yp = y.data();
      for (std::size_t j = 0; j < n; ++j) {
        yp[j] += v0 * r0[j] + v1 * r1[j] + v2 * r2[j] + v3 * r3[j];
      }
    }
    for (; i < m; ++i) {
      const float v = alpha * x[i];
      const float* row = a.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) y[j] += v * row[j];
    }
  }
}

}  // namespace middlefl::tensor
