#include "tensor/blas.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace middlefl::tensor {
namespace {

void check_size(std::span<const float> s, std::size_t expected,
                const char* what) {
  if (s.size() != expected) {
    throw std::invalid_argument(std::string(what) + ": expected " +
                                std::to_string(expected) + " elements, got " +
                                std::to_string(s.size()));
  }
}

/// Copies `rows x cols` row-major `src` into `dst` transposed
/// (`cols x rows` row-major).
void transpose_into(std::span<const float> src, std::size_t rows,
                    std::size_t cols, std::vector<float>& dst) {
  dst.resize(rows * cols);
  // Block the transpose for cache friendliness on larger panels.
  constexpr std::size_t kBlock = 32;
  for (std::size_t i0 = 0; i0 < rows; i0 += kBlock) {
    const std::size_t i1 = std::min(rows, i0 + kBlock);
    for (std::size_t j0 = 0; j0 < cols; j0 += kBlock) {
      const std::size_t j1 = std::min(cols, j0 + kBlock);
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t j = j0; j < j1; ++j) {
          dst[j * rows + i] = src[i * cols + j];
        }
      }
    }
  }
}

/// Core kernel: C[i,:] += alpha * A[i,k] * B[k,:] for row panel [row_lo,
/// row_hi). A row-major m x k, B row-major k x n, C row-major m x n. The
/// i-k-j order streams B and C rows sequentially, which vectorizes well.
void gemm_nn_panel(std::size_t row_lo, std::size_t row_hi, std::size_t n,
                   std::size_t k, float alpha, const float* a, const float* b,
                   float beta, float* c) {
  for (std::size_t i = row_lo; i < row_hi; ++i) {
    float* c_row = c + i * n;
    if (beta == 0.0f) {
      std::fill(c_row, c_row + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) c_row[j] *= beta;
    }
    const float* a_row = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float a_ip = alpha * a_row[p];
      if (a_ip == 0.0f) continue;
      const float* b_row = b + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  check_size(x, y.size(), "axpy");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

void scal(float alpha, std::span<float> x) noexcept {
  for (float& v : x) v *= alpha;
}

double dot(std::span<const float> x, std::span<const float> y) {
  check_size(x, y.size(), "dot");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x[i]) * y[i];
  }
  return acc;
}

double nrm2(std::span<const float> x) noexcept {
  double acc = 0.0;
  for (float v : x) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, std::span<const float> a,
          std::span<const float> b, float beta, std::span<float> c,
          parallel::ThreadPool* pool) {
  check_size(a, m * k, "gemm: A");
  check_size(b, k * n, "gemm: B");
  check_size(c, m * n, "gemm: C");

  // Normalize to the NN kernel by materializing transposed operands. The
  // models in this project keep k*m and k*n small (<= a few hundred KB), so
  // packing is cheap relative to the multiply.
  std::vector<float> a_packed;
  std::vector<float> b_packed;
  const float* a_ptr = a.data();
  const float* b_ptr = b.data();
  if (trans_a == Trans::kYes) {
    transpose_into(a, k, m, a_packed);  // stored as k x m, want m x k
    a_ptr = a_packed.data();
  }
  if (trans_b == Trans::kYes) {
    transpose_into(b, n, k, b_packed);  // stored as n x k, want k x n
    b_ptr = b_packed.data();
  }

  // Parallelize across row panels when there is enough arithmetic to
  // amortize the fork/join (heuristic: >= ~1 MFLOP and >= 2 rows per
  // worker).
  const std::size_t flops = 2 * m * n * k;
  if (pool != nullptr && pool->size() > 1 && flops >= (1u << 20) &&
      m >= 2 * pool->size()) {
    float* c_ptr = c.data();
    parallel::parallel_for(
        *pool, 0, m,
        [=](std::size_t i) {
          gemm_nn_panel(i, i + 1, n, k, alpha, a_ptr, b_ptr, beta, c_ptr);
        },
        parallel::GrainSize{std::max<std::size_t>(1, m / (pool->size() * 4))});
  } else {
    gemm_nn_panel(0, m, n, k, alpha, a_ptr, b_ptr, beta, c.data());
  }
}

void gemv(Trans trans_a, std::size_t m, std::size_t n, float alpha,
          std::span<const float> a, std::span<const float> x, float beta,
          std::span<float> y) {
  check_size(a, m * n, "gemv: A");
  if (trans_a == Trans::kNo) {
    check_size(x, n, "gemv: x");
    check_size(std::span<const float>(y.data(), y.size()), m, "gemv: y");
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      const float* row = a.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        acc += static_cast<double>(row[j]) * x[j];
      }
      y[i] = alpha * static_cast<float>(acc) + beta * y[i];
    }
  } else {
    check_size(x, m, "gemv: x");
    check_size(std::span<const float>(y.data(), y.size()), n, "gemv: y");
    if (beta == 0.0f) {
      std::fill(y.begin(), y.end(), 0.0f);
    } else if (beta != 1.0f) {
      scal(beta, y);
    }
    for (std::size_t i = 0; i < m; ++i) {
      const float xi = alpha * x[i];
      if (xi == 0.0f) continue;
      const float* row = a.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        y[j] += xi * row[j];
      }
    }
  }
}

}  // namespace middlefl::tensor
