#include "tensor/workspace.hpp"

#include <new>

namespace middlefl::tensor {

namespace {
constexpr std::align_val_t kPanelAlign{64};
}

void AlignedFloatBuffer::grow(std::size_t n) {
  // Geometric growth keeps the amortized cost of the high-water climb
  // linear, like the vector slots.
  std::size_t cap = capacity_ == 0 ? 1024 : capacity_;
  while (cap < n) cap *= 2;
  auto* fresh =
      static_cast<float*>(::operator new(cap * sizeof(float), kPanelAlign));
  release();
  data_ = fresh;
  capacity_ = cap;
}

void AlignedFloatBuffer::release() noexcept {
  if (data_ != nullptr) {
    ::operator delete(data_, kPanelAlign);
    data_ = nullptr;
    capacity_ = 0;
  }
}

Workspace& Workspace::tls() {
  thread_local Workspace instance;
  return instance;
}

}  // namespace middlefl::tensor
