#include "tensor/workspace.hpp"

namespace middlefl::tensor {

Workspace& Workspace::tls() {
  thread_local Workspace instance;
  return instance;
}

}  // namespace middlefl::tensor
