#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace middlefl::tensor {
namespace {

void check_same_shape(const Shape& a, const Shape& b, const char* op) {
  if (a != b) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.to_string() + " vs " + b.to_string());
  }
}

}  // namespace

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_.numel()) {
    throw std::invalid_argument("Tensor: data size " +
                                std::to_string(data_.size()) +
                                " does not match shape " + shape_.to_string());
  }
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, parallel::Xoshiro256& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& x : t.data_) {
    x = stddev * static_cast<float>(rng.normal());
  }
  return t;
}

Tensor Tensor::rand_uniform(Shape shape, parallel::Xoshiro256& rng, float lo,
                            float hi) {
  Tensor t(std::move(shape));
  const float span = hi - lo;
  for (float& x : t.data_) {
    x = lo + span * rng.uniform_float();
  }
  return t;
}

std::size_t Tensor::flat_offset(
    std::initializer_list<std::size_t> index) const {
  if (index.size() != shape_.rank()) {
    throw std::out_of_range("Tensor::at: index rank " +
                            std::to_string(index.size()) +
                            " does not match tensor rank " +
                            std::to_string(shape_.rank()));
  }
  std::size_t offset = 0;
  std::size_t axis = 0;
  for (std::size_t i : index) {
    const std::size_t extent = shape_.dim(axis);
    if (i >= extent) {
      throw std::out_of_range("Tensor::at: index " + std::to_string(i) +
                              " out of range for axis " +
                              std::to_string(axis) + " with extent " +
                              std::to_string(extent));
    }
    offset = offset * extent + i;
    ++axis;
  }
  return offset;
}

float& Tensor::at(std::initializer_list<std::size_t> index) {
  return data_[flat_offset(index)];
}

float Tensor::at(std::initializer_list<std::size_t> index) const {
  return data_[flat_offset(index)];
}

Tensor& Tensor::reshape(Shape new_shape) {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch " +
                                shape_.to_string() + " -> " +
                                new_shape.to_string());
  }
  shape_ = std::move(new_shape);
  return *this;
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(shape_, other.shape_, "Tensor::operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(shape_, other.shape_, "Tensor::operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  check_same_shape(shape_, other.shape_, "Tensor::operator*=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) noexcept {
  for (float& x : data_) x *= scalar;
  return *this;
}

Tensor& Tensor::operator+=(float scalar) noexcept {
  for (float& x : data_) x += scalar;
  return *this;
}

Tensor& Tensor::axpy(float alpha, const Tensor& other) {
  check_same_shape(shape_, other.shape_, "Tensor::axpy");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
  return *this;
}

float Tensor::sum() const noexcept {
  // Pairwise-ish accumulation in double; activation tensors are small enough
  // that plain double accumulation keeps error << float epsilon.
  double acc = 0.0;
  for (float x : data_) acc += x;
  return static_cast<float>(acc);
}

float Tensor::max() const noexcept {
  return *std::max_element(data_.begin(), data_.end());
}

std::size_t Tensor::argmax() const noexcept {
  return static_cast<std::size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

float Tensor::norm() const noexcept {
  double acc = 0.0;
  for (float x : data_) acc += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(acc));
}

Tensor operator+(Tensor lhs, const Tensor& rhs) {
  lhs += rhs;
  return lhs;
}

Tensor operator-(Tensor lhs, const Tensor& rhs) {
  lhs -= rhs;
  return lhs;
}

Tensor operator*(Tensor lhs, float scalar) {
  lhs *= scalar;
  return lhs;
}

}  // namespace middlefl::tensor
