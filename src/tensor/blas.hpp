// Level-1/2/3 dense kernels over raw float spans.
//
// These are the hot loops under local SGD: Linear layers lower to sgemm,
// Conv2d lowers to im2col + sgemm, and model aggregation / similarity
// utilities lower to axpy/dot/nrm2 on flat parameter vectors. Kernels take
// spans (size-checked on entry) so both Tensor storage and flat model
// vectors reuse them.
//
// GEMM dispatches to a dedicated kernel per transpose combination — NN and
// TN stream B rows against 4-row register blocks of C, NT computes
// register-tiled dot products with 4-way unrolled lanes — so no operand is
// materialized/transposed except in the rare TT case, which packs into the
// thread-local Workspace (no per-call allocation). Row panels parallelize
// when a thread pool is provided; every row's arithmetic order is
// independent of the panel split, so parallel and serial runs produce
// bitwise-identical results.
//
// dot/nrm2 overloads taking a pool use a FIXED chunk decomposition (chunk
// partials summed in chunk order) so the result is identical whether the
// chunks run serially or in parallel.
#pragma once

#include <cstddef>
#include <span>

namespace middlefl::parallel {
class ThreadPool;
}

namespace middlefl::tensor {

enum class Trans { kNo, kYes };

/// y += alpha * x (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scal(float alpha, std::span<float> x) noexcept;

/// Dot product accumulated in double (4-way unrolled lanes).
double dot(std::span<const float> x, std::span<const float> y);

/// Chunk-deterministic dot: fixed-size chunks are reduced independently
/// and their partials summed in order. With a multi-thread pool the chunks
/// run in parallel; the result is bitwise-identical either way.
double dot(std::span<const float> x, std::span<const float> y,
           parallel::ThreadPool* pool);

/// Euclidean norm accumulated in double (4-way unrolled lanes).
double nrm2(std::span<const float> x) noexcept;

/// Chunk-deterministic nrm2 (see the dot overload).
double nrm2(std::span<const float> x, parallel::ThreadPool* pool);

/// C = alpha * op(A) * op(B) + beta * C where op is identity or transpose.
/// A is m x k after op, B is k x n after op, C is m x n, all row-major.
/// When `pool` is non-null and the output is large, row panels of C are
/// computed in parallel (deterministic: each row's arithmetic order does
/// not depend on the split).
void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, std::span<const float> a,
          std::span<const float> b, float beta, std::span<float> c,
          parallel::ThreadPool* pool = nullptr);

/// y = alpha * op(A) * x + beta * y. A is m x n row-major before op.
void gemv(Trans trans_a, std::size_t m, std::size_t n, float alpha,
          std::span<const float> a, std::span<const float> x, float beta,
          std::span<float> y);

}  // namespace middlefl::tensor
