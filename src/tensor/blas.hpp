// Level-1/2/3 dense kernels over raw float spans.
//
// These are the hot loops under local SGD: Linear layers lower to sgemm,
// Conv2d lowers to im2col + sgemm, and model aggregation / similarity
// utilities lower to axpy/dot/nrm2 on flat parameter vectors. Kernels take
// spans (size-checked on entry) so both Tensor storage and flat model
// vectors reuse them.
//
// GEMM runs a packed micro-kernel with runtime CPU dispatch (see
// cpu_features.hpp and kernels/gemm_kernel.hpp): operands are packed into
// cache-blocked panels in aligned thread-local Workspace slots and swept by
// an MR x NR register tile in scalar, AVX2+FMA or AVX-512 form, chosen by
// cpuid at run time. Every dispatch target accumulates each C element in
// the same fixed K order, so the selected ISA never changes an output bit.
// The one exception is NT with a small B (n < 16 or k < 16), which keeps a
// direct dot-form kernel — packing would dominate there. Row panels
// parallelize when a thread pool is provided; every row's arithmetic order
// is independent of the panel split, so parallel and serial runs produce
// bitwise-identical results.
//
// dot/nrm2 overloads taking a pool use a FIXED chunk decomposition (chunk
// partials summed in chunk order) so the result is identical whether the
// chunks run serially or in parallel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace middlefl::parallel {
class ThreadPool;
}

namespace middlefl::tensor {

enum class Trans { kNo, kYes };

/// Optional per-element epilogue fused into gemm's final sweep over C, so
/// layer bias/activation passes need not re-traverse activation memory.
/// Applied per element, after the full K accumulation, in this order:
///
///   c = beta * c + alpha * sum_p op(A)[i,p] * op(B)[p,j]
///   c += col_bias[j]                   (if col_bias)
///   c += row_bias[i]                   (if row_bias)
///   c = c > 0 ? c : 0                  (if relu)
///   relu_mask[i*n + j] = c > 0 ? 1 : 0 (if relu_mask)
///
/// Each step is the exact elementwise operation the unfused layer code
/// performed, so fused and unfused results are bitwise identical.
struct GemmEpilogue {
  const float* col_bias = nullptr;  // length n (Linear bias)
  const float* row_bias = nullptr;  // length m (Conv2d per-channel bias)
  bool relu = false;
  std::uint8_t* relu_mask = nullptr;  // length m*n; requires relu
  /// When set (length m): row_sums[i] += sum_p op(A)[i,p], accumulated in
  /// ascending-p order directly into the caller's array — the grad-bias
  /// column reduction of the TN backward GEMM, folded into the A sweep.
  float* row_sums = nullptr;
};

/// y += alpha * x (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha.
void scal(float alpha, std::span<float> x) noexcept;

/// Dot product accumulated in double (4-way unrolled lanes).
double dot(std::span<const float> x, std::span<const float> y);

/// Chunk-deterministic dot: fixed-size chunks are reduced independently
/// and their partials summed in order. With a multi-thread pool the chunks
/// run in parallel; the result is bitwise-identical either way.
double dot(std::span<const float> x, std::span<const float> y,
           parallel::ThreadPool* pool);

/// Euclidean norm accumulated in double (4-way unrolled lanes).
double nrm2(std::span<const float> x) noexcept;

/// Chunk-deterministic nrm2 (see the dot overload).
double nrm2(std::span<const float> x, parallel::ThreadPool* pool);

/// C = alpha * op(A) * op(B) + beta * C where op is identity or transpose.
/// A is m x k after op, B is k x n after op, C is m x n, all row-major.
/// When `pool` is non-null and the output is large, row panels of C are
/// computed in parallel (deterministic: each row's arithmetic order does
/// not depend on the split). `epilogue`, when non-null, is applied in the
/// same sweep that writes C (see GemmEpilogue for the exact semantics).
void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, std::span<const float> a,
          std::span<const float> b, float beta, std::span<float> c,
          parallel::ThreadPool* pool = nullptr,
          const GemmEpilogue* epilogue = nullptr);

/// y = alpha * op(A) * x + beta * y. A is m x n row-major before op.
void gemv(Trans trans_a, std::size_t m, std::size_t n, float alpha,
          std::span<const float> a, std::span<const float> x, float beta,
          std::span<float> y);

}  // namespace middlefl::tensor
